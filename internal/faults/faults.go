// Package faults is a deterministic fault-injection framework for the
// parallel engines. Production code declares named injection points
// ("sites") inside the parallel primitives and engine phases; a test (or an
// operator via the BICC_FAULTS environment variable) activates a Plan whose
// rules force panics, delays, or spurious cancellations at matching sites.
//
// Firing decisions are deterministic: a rule with Every=N fires exactly at
// the (site, worker, iteration) triples whose seeded hash is divisible by N,
// so a failing fault schedule can be replayed by rerunning with the same
// seed. With no active plan an injection point costs one atomic pointer load
// and a branch, cheap enough to leave compiled into release binaries.
//
// The package exists to prove the fault-isolation contract: every engine
// must return a typed error — never crash, never hang — no matter which site
// misbehaves. The matrix test in this package's test suite exercises every
// registered site with every fault kind against every algorithm.
package faults

import (
	"errors"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"bicc/internal/obs"
	"bicc/internal/par"
)

// Injection counters on the process-wide registry, one per fault kind.
// They count unconditionally when a rule fires (firing is already the rare
// path), so a BICC_FAULTS chaos run shows its injections on /metrics
// without needing the obs hot-path gate.
var (
	mInjected = obs.Default().CounterVec("bicc_fault_injections_total",
		"Faults injected by the deterministic injection framework, by kind.", "kind")
	mInjPanic   = mInjected.With(KindPanic.String())
	mInjDelay   = mInjected.With(KindDelay.String())
	mInjCancel  = mInjected.With(KindCancel.String())
	mInjKill    = mInjected.With(KindKill.String())
	mInjCorrupt = mInjected.With(KindCorrupt.String())
)

// Kind is the effect a rule injects at a matching site.
type Kind uint8

const (
	// KindPanic panics with an *InjectedPanic, exercising the runtime's
	// panic containment.
	KindPanic Kind = iota
	// KindDelay sleeps for the rule's Delay, exercising deadlines and
	// slow-path behaviour.
	KindDelay
	// KindCancel trips the computation's Canceler with ErrInjected,
	// simulating a spurious internal cancellation. At sites without a
	// canceler it is a no-op.
	KindCancel
	// KindKill terminates the process with an uncatchable SIGKILL at the
	// matching site — no deferred functions, no flushes, exactly the death
	// an OOM killer or power loss delivers. It exists for crash-recovery
	// harnesses that run the victim as a subprocess (the durable.* sites);
	// it is never part of the in-process fault matrix.
	KindKill
	// KindCorrupt flips one deterministic bit in the byte buffer offered at
	// a data-bearing site (the scrub/verify read paths), simulating silent
	// bit-rot on disk or in a retention buffer. It only takes effect through
	// InjectCorrupt — sites that call the plain Inject hook carry no data to
	// damage, so KindCorrupt is inert there.
	KindCorrupt
)

// String names the kind as used in BICC_FAULTS specs.
func (k Kind) String() string {
	switch k {
	case KindPanic:
		return "panic"
	case KindDelay:
		return "delay"
	case KindCancel:
		return "cancel"
	case KindKill:
		return "kill"
	case KindCorrupt:
		return "corrupt"
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// ErrInjected is the cancellation cause installed by KindCancel rules.
var ErrInjected = errors.New("faults: injected cancellation")

// InjectedPanic is the value thrown by KindPanic rules. It implements error
// so tests can match it through par.PanicError's Unwrap chain with errors.As.
type InjectedPanic struct {
	Site   string
	Worker int
	Iter   int
}

func (e *InjectedPanic) Error() string {
	return fmt.Sprintf("faults: injected panic at %s (worker %d, iter %d)", e.Site, e.Worker, e.Iter)
}

// Rule selects injection points and the fault to apply there. The zero value
// matches nothing useful; build rules with NewRule or Parse.
type Rule struct {
	Kind Kind
	// Site matches a registered site name exactly; "" or "*" match any site.
	Site string
	// Worker matches the worker index at the site; -1 matches any worker.
	Worker int
	// Iter matches the iteration number at the site; -1 matches any.
	Iter int
	// Every, when > 1, fires only at triples whose seeded hash of
	// site:worker:iter is divisible by Every — a deterministic "1 in N".
	Every int
	// Count, when > 0, caps the number of times this rule fires.
	Count int
	// Delay is the sleep for KindDelay; <= 0 means 1ms.
	Delay time.Duration

	fired atomic.Int64
}

// NewRule returns a rule of the given kind matching every worker and
// iteration of site (use "*" for all sites).
func NewRule(kind Kind, site string) *Rule {
	return &Rule{Kind: kind, Site: site, Worker: -1, Iter: -1}
}

// Fired reports how many times the rule has fired since activation.
func (r *Rule) Fired() int64 { return r.fired.Load() }

func (r *Rule) matches(seed uint64, site string, worker, iter int) bool {
	if r.Site != "" && r.Site != "*" && r.Site != site {
		return false
	}
	if r.Worker >= 0 && r.Worker != worker {
		return false
	}
	if r.Iter >= 0 && r.Iter != iter {
		return false
	}
	if r.Every > 1 && keyHash(seed, site, worker, iter)%uint64(r.Every) != 0 {
		return false
	}
	// The count check mutates, so it must come after every pure predicate.
	if r.Count > 0 && r.fired.Add(1) > int64(r.Count) {
		return false
	}
	if r.Count <= 0 {
		r.fired.Add(1)
	}
	return true
}

// keyHash is FNV-1a over "site:worker:iter" mixed with the plan seed; the
// same triple always hashes the same way for a given seed, which is what
// makes Every-based rules replayable.
func keyHash(seed uint64, site string, worker, iter int) uint64 {
	const offset, prime = 14695981039346656037, 1099511628211
	h := offset ^ seed
	for i := 0; i < len(site); i++ {
		h = (h ^ uint64(site[i])) * prime
	}
	h = (h ^ uint64(uint32(worker))) * prime
	h = (h ^ uint64(uint32(iter))) * prime
	// Final avalanche (splitmix64 tail) so low bits are usable for modulo.
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	return h
}

// Plan is an activatable set of rules with the seed that makes Every-based
// rules deterministic.
type Plan struct {
	Seed  uint64
	Rules []*Rule
}

var active atomic.Pointer[Plan]

// Activate installs p as the process-wide fault plan. Passing nil is
// equivalent to Deactivate. Tests that activate plans must not run in
// parallel with tests that assume a fault-free engine.
func Activate(p *Plan) { active.Store(p) }

// Deactivate removes the active plan; injection points return to their
// near-zero disabled cost.
func Deactivate() { active.Store(nil) }

// Enabled reports whether a fault plan is active.
func Enabled() bool { return active.Load() != nil }

// Inject is the hook compiled into instrumented code. site is a registered
// injection point, worker the worker index there (0 when single-threaded),
// iter the site's iteration/round/phase number. c is the computation's
// cancellation token when the site has one, else nil (KindCancel rules are
// then inert at that site).
func Inject(c *par.Canceler, site string, worker, iter int) {
	p := active.Load()
	if p == nil {
		return
	}
	p.fire(c, site, worker, iter)
}

// InjectCorrupt is the data-path injection hook: verify/read sites that hold
// the raw bytes of a durable artifact offer them here, and any matching
// KindCorrupt rule flips one deterministic bit — the same (seed, site,
// worker, iter) always flips the same bit, so a bit-rot schedule replays
// exactly like every other fault kind. Returns whether any bit was flipped.
func InjectCorrupt(site string, worker, iter int, buf []byte) bool {
	p := active.Load()
	if p == nil || len(buf) == 0 {
		return false
	}
	flipped := false
	for _, r := range p.Rules {
		if r.Kind != KindCorrupt || !r.matches(p.Seed, site, worker, iter) {
			continue
		}
		bit := keyHash(p.Seed, site, worker, iter) % uint64(len(buf)*8)
		buf[bit/8] ^= 1 << (bit % 8)
		mInjCorrupt.Inc()
		flipped = true
	}
	return flipped
}

func (p *Plan) fire(c *par.Canceler, site string, worker, iter int) {
	for _, r := range p.Rules {
		if !r.matches(p.Seed, site, worker, iter) {
			continue
		}
		switch r.Kind {
		case KindPanic:
			mInjPanic.Inc()
			panic(&InjectedPanic{Site: site, Worker: worker, Iter: iter})
		case KindDelay:
			mInjDelay.Inc()
			d := r.Delay
			if d <= 0 {
				d = time.Millisecond
			}
			time.Sleep(d)
		case KindCancel:
			if c != nil {
				mInjCancel.Inc()
				c.Cancel(fmt.Errorf("%w at %s (worker %d, iter %d)", ErrInjected, site, worker, iter))
			}
		case KindKill:
			mInjKill.Inc()
			killSelf(site, worker, iter)
		case KindCorrupt:
			// No byte buffer at a plain injection point; corruption is
			// delivered through InjectCorrupt on the verify/read paths.
		}
	}
}

// --- site registry ---------------------------------------------------------

var (
	sitesMu sync.Mutex
	sites   = map[string]bool{} // name -> has a canceler (KindCancel effective)
)

// RegisterSite declares a named injection point and returns the name, so
// instrumented packages can register from a var initializer. cancelable
// records whether Inject receives a non-nil canceler there (whether
// KindCancel has any effect).
func RegisterSite(name string, cancelable bool) string {
	sitesMu.Lock()
	defer sitesMu.Unlock()
	sites[name] = cancelable
	return name
}

// Sites returns every registered site name, sorted; the fault matrix test
// iterates this to prove coverage.
func Sites() []string {
	sitesMu.Lock()
	defer sitesMu.Unlock()
	out := make([]string, 0, len(sites))
	for s := range sites {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// SiteCancelable reports whether the named site passes a canceler to Inject.
func SiteCancelable(name string) bool {
	sitesMu.Lock()
	defer sitesMu.Unlock()
	return sites[name]
}

// --- environment activation ------------------------------------------------

// EnvVar and EnvSeed are the environment knobs honored at process start:
// EnvVar holds a Parse spec, EnvSeed the decimal seed (default 1).
const (
	EnvVar  = "BICC_FAULTS"
	EnvSeed = "BICC_FAULTS_SEED"
)

func init() {
	spec := os.Getenv(EnvVar)
	if spec == "" {
		return
	}
	seed := uint64(1)
	if s := os.Getenv(EnvSeed); s != "" {
		if v, err := strconv.ParseUint(s, 10, 64); err == nil {
			seed = v
		}
	}
	plan, err := Parse(spec, seed)
	if err != nil {
		// A typo in a debug env var must not take the daemon down.
		fmt.Fprintf(os.Stderr, "faults: ignoring %s: %v\n", EnvVar, err)
		return
	}
	Activate(plan)
}

// Parse builds a Plan from a spec string: rules separated by ';', each rule
// a kind followed by comma-separated options:
//
//	kind[,site=NAME][,worker=N][,iter=N][,every=N][,count=N][,delay=DUR]
//
// e.g. "panic,site=spantree.bfs.level,count=1;delay,site=*,every=100,delay=2ms".
func Parse(spec string, seed uint64) (*Plan, error) {
	plan := &Plan{Seed: seed}
	for _, rs := range strings.Split(spec, ";") {
		rs = strings.TrimSpace(rs)
		if rs == "" {
			continue
		}
		fields := strings.Split(rs, ",")
		var kind Kind
		switch strings.TrimSpace(fields[0]) {
		case "panic":
			kind = KindPanic
		case "delay":
			kind = KindDelay
		case "cancel":
			kind = KindCancel
		case "kill":
			kind = KindKill
		case "corrupt":
			kind = KindCorrupt
		default:
			return nil, fmt.Errorf("unknown fault kind %q in rule %q", fields[0], rs)
		}
		r := NewRule(kind, "*")
		for _, f := range fields[1:] {
			k, v, ok := strings.Cut(strings.TrimSpace(f), "=")
			if !ok {
				return nil, fmt.Errorf("malformed option %q in rule %q (want key=value)", f, rs)
			}
			switch k {
			case "site":
				r.Site = v
			case "worker", "iter", "every", "count":
				n, err := strconv.Atoi(v)
				if err != nil {
					return nil, fmt.Errorf("option %s=%q in rule %q: %v", k, v, rs, err)
				}
				switch k {
				case "worker":
					r.Worker = n
				case "iter":
					r.Iter = n
				case "every":
					r.Every = n
				case "count":
					r.Count = n
				}
			case "delay":
				d, err := time.ParseDuration(v)
				if err != nil {
					return nil, fmt.Errorf("option delay=%q in rule %q: %v", v, rs, err)
				}
				r.Delay = d
			default:
				return nil, fmt.Errorf("unknown option %q in rule %q", k, rs)
			}
		}
		plan.Rules = append(plan.Rules, r)
	}
	if len(plan.Rules) == 0 {
		return nil, errors.New("empty fault spec")
	}
	return plan, nil
}
