// Package prefix implements parallel prefix computations (scans) in the
// style of Helman and JáJá's SMP prefix-sum algorithm: each of p workers
// scans a contiguous block sequentially, block totals are scanned on one
// processor, and a second parallel pass adds each block's offset. Total work
// is O(n) with two sweeps over the data, which is the cache behaviour the
// paper relies on when it replaces list ranking with prefix sums in TV-opt.
//
// The package also provides scan-based stream compaction, the primitive that
// paper Algorithm 1 uses to number nontree edges and compact the staged
// auxiliary edge list.
package prefix

import (
	"bicc/internal/faults"
	"bicc/internal/par"
)

// Fault-injection points: one per worker in the first scan pass and in the
// compaction scatter. Prefix sums have no cancellation token, so injected
// cancellations are inert here; panics surface through the par runtime.
var (
	siteScan    = faults.RegisterSite("prefix.scan", false)
	siteCompact = faults.RegisterSite("prefix.compact", false)
)

// InclusiveSum32 computes in-place inclusive prefix sums of xs using p
// workers: xs[i] becomes xs[0]+...+xs[i]. It returns the total.
func InclusiveSum32(p int, xs []int32) int32 {
	n := len(xs)
	if n == 0 {
		return 0
	}
	p = par.Procs(p)
	if p == 1 || n < 2*p {
		var acc int32
		for i := range xs {
			acc += xs[i]
			xs[i] = acc
		}
		return acc
	}
	if p > n {
		p = n
	}
	totals := make([]int32, p)
	// Pass 1: sequential scan within each block; record block totals.
	par.ForWorker(p, n, func(w, lo, hi int) {
		faults.Inject(nil, siteScan, w, 0)
		var acc int32
		for i := lo; i < hi; i++ {
			acc += xs[i]
			xs[i] = acc
		}
		totals[w] = acc
	})
	// Scan of block totals (p is small; do it sequentially).
	var acc int32
	for i := range totals {
		t := totals[i]
		totals[i] = acc
		acc += t
	}
	// Pass 2: add each block's offset.
	par.ForWorker(p, n, func(w, lo, hi int) {
		off := totals[w]
		if off == 0 {
			return
		}
		for i := lo; i < hi; i++ {
			xs[i] += off
		}
	})
	return acc
}

// ExclusiveSum32 computes in-place exclusive prefix sums: xs[i] becomes
// xs[0]+...+xs[i-1], with xs[0] = 0. It returns the total of the original
// values.
func ExclusiveSum32(p int, xs []int32) int32 {
	n := len(xs)
	if n == 0 {
		return 0
	}
	total := InclusiveSum32(p, xs)
	// Shift right by one in parallel: xs[i] = inclusive[i-1].
	// Work backwards within blocks so values are read before overwritten;
	// block boundaries need the predecessor's last inclusive value, which is
	// still intact because blocks are processed independently after saving
	// boundary values.
	p = par.Procs(p)
	if p > n {
		p = n
	}
	boundary := make([]int32, p) // inclusive value just before each block
	par.ForWorker(p, n, func(w, lo, hi int) {
		if lo == 0 {
			boundary[w] = 0
		} else {
			boundary[w] = xs[lo-1]
		}
	})
	par.ForWorker(p, n, func(w, lo, hi int) {
		for i := hi - 1; i > lo; i-- {
			xs[i] = xs[i-1]
		}
		xs[lo] = boundary[w]
	})
	return total
}

// InclusiveSum64 is InclusiveSum32 for int64 values.
func InclusiveSum64(p int, xs []int64) int64 {
	n := len(xs)
	if n == 0 {
		return 0
	}
	p = par.Procs(p)
	if p == 1 || n < 2*p {
		var acc int64
		for i := range xs {
			acc += xs[i]
			xs[i] = acc
		}
		return acc
	}
	if p > n {
		p = n
	}
	totals := make([]int64, p)
	par.ForWorker(p, n, func(w, lo, hi int) {
		var acc int64
		for i := lo; i < hi; i++ {
			acc += xs[i]
			xs[i] = acc
		}
		totals[w] = acc
	})
	var acc int64
	for i := range totals {
		t := totals[i]
		totals[i] = acc
		acc += t
	}
	par.ForWorker(p, n, func(w, lo, hi int) {
		off := totals[w]
		if off == 0 {
			return
		}
		for i := lo; i < hi; i++ {
			xs[i] += off
		}
	})
	return acc
}

// InclusiveMin32 computes in-place inclusive prefix minima of xs.
func InclusiveMin32(p int, xs []int32) {
	scan32(p, xs, func(a, b int32) int32 {
		if a < b {
			return a
		}
		return b
	})
}

// InclusiveMax32 computes in-place inclusive prefix maxima of xs.
func InclusiveMax32(p int, xs []int32) {
	scan32(p, xs, func(a, b int32) int32 {
		if a > b {
			return a
		}
		return b
	})
}

// scan32 is the generic two-pass block scan for an associative op. The
// second pass combines each block's prefix with the scanned block totals.
func scan32(p int, xs []int32, op func(a, b int32) int32) {
	n := len(xs)
	if n == 0 {
		return
	}
	p = par.Procs(p)
	if p == 1 || n < 2*p {
		for i := 1; i < n; i++ {
			xs[i] = op(xs[i-1], xs[i])
		}
		return
	}
	if p > n {
		p = n
	}
	totals := make([]int32, p)
	par.ForWorker(p, n, func(w, lo, hi int) {
		faults.Inject(nil, siteScan, w, 1)
		for i := lo + 1; i < hi; i++ {
			xs[i] = op(xs[i-1], xs[i])
		}
		totals[w] = xs[hi-1]
	})
	// Exclusive scan of totals; worker 0 has no offset.
	for i := 1; i < p; i++ {
		totals[i] = op(totals[i-1], totals[i])
	}
	par.ForWorker(p, n, func(w, lo, hi int) {
		if w == 0 {
			return
		}
		off := totals[w-1]
		for i := lo; i < hi; i++ {
			xs[i] = op(off, xs[i])
		}
	})
}

// Compact writes the indices i in [0, n) for which keep(i) holds into a new
// slice, preserving order, using a prefix sum over 0/1 flags — the paper's
// "compact L into G' using prefix-sum" step. It runs with p workers.
func Compact(p, n int, keep func(i int) bool) []int32 {
	if n == 0 {
		return nil
	}
	flags := make([]int32, n)
	par.For(p, n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			if keep(i) {
				flags[i] = 1
			}
		}
	})
	total := ExclusiveSum32(p, flags)
	out := make([]int32, total)
	par.For(p, n, func(lo, hi int) {
		faults.Inject(nil, siteCompact, 0, lo)
		for i := lo; i < hi; i++ {
			if keep(i) {
				out[flags[i]] = int32(i)
			}
		}
	})
	return out
}

// CompactInto scatters src[i] to out[rank of i among kept] for kept indices
// and returns the number kept. out must have capacity for all kept items;
// it is sliced to the kept length and returned.
func CompactInto[T any](p int, src []T, keep func(i int) bool, out []T) []T {
	n := len(src)
	if n == 0 {
		return out[:0]
	}
	flags := make([]int32, n)
	par.For(p, n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			if keep(i) {
				flags[i] = 1
			}
		}
	})
	total := ExclusiveSum32(p, flags)
	out = out[:total]
	par.For(p, n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			if keep(i) {
				out[flags[i]] = src[i]
			}
		}
	})
	return out
}
