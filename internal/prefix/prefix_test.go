package prefix

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func seqInclusive(xs []int32) []int32 {
	out := make([]int32, len(xs))
	var acc int32
	for i, x := range xs {
		acc += x
		out[i] = acc
	}
	return out
}

func randSlice(rng *rand.Rand, n int) []int32 {
	xs := make([]int32, n)
	for i := range xs {
		xs[i] = int32(rng.Intn(201) - 100)
	}
	return xs
}

func TestInclusiveSum32MatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{0, 1, 2, 3, 15, 16, 17, 1000, 4097} {
		for _, p := range []int{1, 2, 3, 4, 8} {
			xs := randSlice(rng, n)
			want := seqInclusive(xs)
			got := append([]int32(nil), xs...)
			total := InclusiveSum32(p, got)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("n=%d p=%d: got[%d]=%d, want %d", n, p, i, got[i], want[i])
				}
			}
			var wantTotal int32
			if n > 0 {
				wantTotal = want[n-1]
			}
			if total != wantTotal {
				t.Fatalf("n=%d p=%d: total=%d, want %d", n, p, total, wantTotal)
			}
		}
	}
}

func TestExclusiveSum32(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for _, n := range []int{0, 1, 2, 5, 100, 1023, 1024} {
		for _, p := range []int{1, 2, 4, 7} {
			xs := randSlice(rng, n)
			inc := seqInclusive(xs)
			got := append([]int32(nil), xs...)
			total := ExclusiveSum32(p, got)
			for i := range got {
				want := int32(0)
				if i > 0 {
					want = inc[i-1]
				}
				if got[i] != want {
					t.Fatalf("n=%d p=%d: got[%d]=%d, want %d", n, p, i, got[i], want)
				}
			}
			var wantTotal int32
			if n > 0 {
				wantTotal = inc[n-1]
			}
			if total != wantTotal {
				t.Fatalf("n=%d p=%d: total=%d, want %d", n, p, total, wantTotal)
			}
		}
	}
}

func TestInclusiveSum64(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for _, n := range []int{0, 1, 33, 5000} {
		xs := make([]int64, n)
		for i := range xs {
			xs[i] = int64(rng.Intn(1000000)) - 500000
		}
		want := make([]int64, n)
		var acc int64
		for i, x := range xs {
			acc += x
			want[i] = acc
		}
		got := append([]int64(nil), xs...)
		total := InclusiveSum64(4, got)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("n=%d: got[%d]=%d, want %d", n, i, got[i], want[i])
			}
		}
		if total != acc {
			t.Fatalf("n=%d: total=%d, want %d", n, total, acc)
		}
	}
}

func TestInclusiveMinMax(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	for _, n := range []int{1, 2, 17, 999} {
		for _, p := range []int{1, 3, 8} {
			xs := randSlice(rng, n)
			wantMin := make([]int32, n)
			wantMax := make([]int32, n)
			mn, mx := xs[0], xs[0]
			for i, x := range xs {
				if x < mn {
					mn = x
				}
				if x > mx {
					mx = x
				}
				wantMin[i], wantMax[i] = mn, mx
			}
			gotMin := append([]int32(nil), xs...)
			InclusiveMin32(p, gotMin)
			gotMax := append([]int32(nil), xs...)
			InclusiveMax32(p, gotMax)
			for i := range xs {
				if gotMin[i] != wantMin[i] {
					t.Fatalf("min n=%d p=%d i=%d: got %d want %d", n, p, i, gotMin[i], wantMin[i])
				}
				if gotMax[i] != wantMax[i] {
					t.Fatalf("max n=%d p=%d i=%d: got %d want %d", n, p, i, gotMax[i], wantMax[i])
				}
			}
		}
	}
}

func TestCompact(t *testing.T) {
	n := 1000
	got := Compact(4, n, func(i int) bool { return i%7 == 0 })
	idx := 0
	for i := 0; i < n; i++ {
		if i%7 == 0 {
			if idx >= len(got) || got[idx] != int32(i) {
				t.Fatalf("Compact missing or misordered index %d", i)
			}
			idx++
		}
	}
	if idx != len(got) {
		t.Fatalf("Compact returned %d extra items", len(got)-idx)
	}
}

func TestCompactEmpty(t *testing.T) {
	if got := Compact(4, 0, func(i int) bool { return true }); len(got) != 0 {
		t.Errorf("Compact on empty range returned %v", got)
	}
	if got := Compact(4, 100, func(i int) bool { return false }); len(got) != 0 {
		t.Errorf("Compact with nothing kept returned %v", got)
	}
}

func TestCompactInto(t *testing.T) {
	src := []string{"a", "b", "c", "d", "e", "f"}
	out := make([]string, 0, len(src))
	got := CompactInto(3, src, func(i int) bool { return i%2 == 1 }, out[:cap(out)])
	want := []string{"b", "d", "f"}
	if len(got) != len(want) {
		t.Fatalf("CompactInto len=%d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("CompactInto[%d]=%q, want %q", i, got[i], want[i])
		}
	}
}

// Property: parallel inclusive scan equals sequential scan for arbitrary
// inputs and processor counts.
func TestQuickInclusiveSum(t *testing.T) {
	f := func(xs []int32, p uint8) bool {
		pp := int(p%8) + 1
		got := append([]int32(nil), xs...)
		InclusiveSum32(pp, got)
		want := seqInclusive(xs)
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: exclusive scan then shifting left one and adding input yields
// the inclusive scan.
func TestQuickExclusiveVsInclusive(t *testing.T) {
	f := func(xs []int32, p uint8) bool {
		pp := int(p%8) + 1
		exc := append([]int32(nil), xs...)
		ExclusiveSum32(pp, exc)
		inc := seqInclusive(xs)
		for i := range xs {
			if exc[i]+xs[i] != inc[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
