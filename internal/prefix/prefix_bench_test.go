package prefix

import (
	"math/rand"
	"runtime"
	"testing"
)

func benchInput(n int) []int32 {
	rng := rand.New(rand.NewSource(1))
	xs := make([]int32, n)
	for i := range xs {
		xs[i] = int32(rng.Intn(100))
	}
	return xs
}

func BenchmarkInclusiveSum32(b *testing.B) {
	const n = 1 << 20
	src := benchInput(n)
	xs := make([]int32, n)
	for _, p := range []int{1, runtime.GOMAXPROCS(0)} {
		b.Run(name(p), func(b *testing.B) {
			b.SetBytes(4 * n)
			for i := 0; i < b.N; i++ {
				copy(xs, src)
				InclusiveSum32(p, xs)
			}
		})
	}
}

func BenchmarkExclusiveSum32(b *testing.B) {
	const n = 1 << 20
	src := benchInput(n)
	xs := make([]int32, n)
	for _, p := range []int{1, runtime.GOMAXPROCS(0)} {
		b.Run(name(p), func(b *testing.B) {
			b.SetBytes(4 * n)
			for i := 0; i < b.N; i++ {
				copy(xs, src)
				ExclusiveSum32(p, xs)
			}
		})
	}
}

func BenchmarkCompact(b *testing.B) {
	const n = 1 << 20
	p := runtime.GOMAXPROCS(0)
	for i := 0; i < b.N; i++ {
		Compact(p, n, func(i int) bool { return i%3 == 0 })
	}
}

func name(p int) string {
	if p == 1 {
		return "p=1"
	}
	return "p=max"
}
