package plan

import "math"

// Engine names, identical to the bicc.Algorithm presets. The planner speaks
// strings so it can sit below the public package (which imports it to
// resolve Auto runs) without a dependency cycle.
const (
	Sequential = "sequential"
	TVSMP      = "tv-smp"
	TVOpt      = "tv-opt"
	TVFilter   = "tv-filter"
	FastBCC    = "fast-bcc"
)

// EngineOrder lists every engine the planner may choose, in tie-break order:
// when two candidates score equally, the earlier one wins, so the promoted
// skeleton engine is preferred over the TV variants at a draw.
var EngineOrder = []string{Sequential, FastBCC, TVFilter, TVOpt, TVSMP}

// The prior cost model: estimated latency = work · scale · factor / eff(p)
// + p · overhead, with work = n + 2m. The constants are calibrated against
// BENCH_2.json (m = 4n at scale 0.1: sequential 43.7 ms, fast-bcc 65.5 ms,
// tv-filter 103.6 ms, tv-smp 107.3 ms, tv-opt 118.0 ms for work = 9·10^5),
// then bent to encode three decisions the raw p=1 numbers cannot express:
//
//   - the FAST-BCC promotion (ROADMAP): past smallWork, unannotated queries
//     get the parallel skeleton engine, not the DFS baseline — sequential
//     cannot use a second core and pins an admission worker for its whole
//     run, so its prior carries seqScalePenalty at scale (the online model
//     corrects this per bucket wherever sequential is truly faster);
//   - the paper's §4 rule survives at high parallelism: TV-filter's factor
//     discount on dense graphs and its p^0.75 scaling make it win once
//     enough workers amortize the tour, TV-opt takes the sparse high-p
//     region;
//   - BFS-based engines (TV-filter, FAST-BCC) pay for diameter: their level
//     sweeps cost O(d) rounds, so the high-diameter class routes to TV-opt's
//     work-stealing traversal (or sequential at p=1).
const (
	// scaleNs is nanoseconds of estimated latency per unit of work for a
	// factor-1.0 engine.
	scaleNs = 50
	// overheadNs is the per-worker startup/barrier cost charged to parallel
	// engines: on tiny graphs it dominates and sends the decision to the
	// sequential engine.
	overheadNs = 200_000
	// smallWork is where the sequential engine stops being the default: past
	// 64Ki work units its inability to scale costs more than its constant
	// advantage. Matches SizeClass >= 5.
	smallWork = 1 << 16
	// seqScalePenalty inflates sequential's prior past smallWork.
	seqScalePenalty = 1.9
	// diamHighPenalty and diamMidPenalty multiply the BFS-based engines'
	// factors by diameter class.
	diamHighPenalty = 2.2
	diamMidPenalty  = 1.3
	// filterSparsePenalty inflates TV-filter below the paper's m >= 4n
	// threshold: with few nontree edges to discard, filtering is overhead.
	filterSparsePenalty = 1.3
)

// engineFactor returns the per-work-unit cost factor of engine on a graph
// with features f — the p=1 shape of the prior.
func engineFactor(engine string, f Features) float64 {
	diam := 1.0
	switch f.DiamClass {
	case DiamHigh:
		diam = diamHighPenalty
	case DiamMid:
		diam = diamMidPenalty
	}
	switch engine {
	case Sequential:
		if f.work() >= smallWork {
			return seqScalePenalty
		}
		return 1.0
	case FastBCC:
		return 1.4 * diam
	case TVFilter:
		factor := 2.3 * diam
		if f.DensityClass < 2 {
			factor *= filterSparsePenalty
		}
		return factor
	case TVOpt:
		return 2.65
	case TVSMP:
		return 2.4
	}
	// Unknown engines (a future preset scored before the prior learns it)
	// are costed as the worst known one, so history alone can promote them.
	return 3.0
}

// engineEff returns the effective-speedup divisor of engine at p workers.
// The exponents mirror the paper's Fig. 3 shapes: TV-opt and TV-filter scale
// best, TV-SMP's sort-based Euler tour worst among the TV family, and
// FAST-BCC — already cheap at p=1 — gains the least from extra workers
// (BENCH_2's flat p=1 vs p=4 curve).
func engineEff(engine string, p int) float64 {
	if p <= 1 {
		return 1
	}
	switch engine {
	case Sequential:
		return 1
	case TVSMP:
		return math.Pow(float64(p), 0.5)
	case FastBCC:
		return math.Pow(float64(p), 0.4)
	default: // tv-opt, tv-filter, future engines
		return math.Pow(float64(p), 0.75)
	}
}

// priorNs estimates the latency of running engine at p workers on a graph
// with features f, in nanoseconds.
func priorNs(engine string, p int, f Features) float64 {
	if p < 1 {
		p = 1
	}
	est := f.work() * scaleNs * engineFactor(engine, f) / engineEff(engine, p)
	if engine != Sequential {
		est += float64(p) * overheadNs
	}
	return est
}
