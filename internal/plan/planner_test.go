package plan

import (
	"testing"
	"time"

	"bicc/internal/graph"
	"bicc/internal/obs"
)

// feat builds a feature vector the way Extract would, from raw measurements.
func feat(n, m int, depth int32, skew float64) Features {
	f := Features{N: n, M: m, Depth: depth, Skew: skew}
	if n > 0 {
		f.Density = float64(m) / float64(n)
	}
	f.SizeClass = sizeClass(n + m)
	f.DensityClass = densityClass(f.Density)
	f.DiamClass = diamClass(depth, n)
	f.SkewClass = skewClass(skew)
	return f
}

// TestDecisionGolden pins the frozen planner's choices over a synthetic
// feature grid: the paper-rule region at high parallelism, the FAST-BCC
// promotion region at low parallelism, and the tiny-graph sequential region.
// These are behavioral contracts — a prior retune that moves one must update
// this table deliberately.
func TestDecisionGolden(t *testing.T) {
	p := New(Config{MaxProcs: 8, Frozen: true, Registry: obs.NewRegistry()})
	cases := []struct {
		name       string
		f          Features
		pinned     int
		wantEngine string
		wantProcs  int
	}{
		// Tiny graphs: worker startup dominates, DFS baseline wins outright.
		{"tiny-sparse", feat(100, 150, 8, 2), 0, Sequential, 1},
		{"tiny-dense", feat(1000, 4000, 4, 3), 0, Sequential, 1},
		// FAST-BCC promotion: large dense graph pinned to p=1 — the
		// acceptance-criterion cell (m = 4n, no history, planner on).
		{"promo-dense-p1", feat(100_000, 400_000, 6, 3), 1, FastBCC, 1},
		// Low parallelism, both densities: the skeleton engine still wins.
		{"promo-dense-p2", feat(100_000, 400_000, 6, 3), 2, FastBCC, 2},
		{"promo-sparse-p1", feat(100_000, 150_000, 9, 2), 1, FastBCC, 1},
		// Paper §4 region at full parallelism: TV-filter on dense inputs,
		// TV-opt on sparse ones.
		{"paper-dense-p8", feat(100_000, 400_000, 6, 3), 8, TVFilter, 8},
		{"paper-sparse-p8", feat(100_000, 150_000, 9, 2), 8, TVOpt, 8},
		// High-diameter inputs punish the BFS-based engines: chains go to
		// sequential at p=1 and TV-opt's traversal when parallel.
		{"chain-p1", feat(100_000, 100_000, 50_000, 1.2), 1, Sequential, 1},
		{"chain-p8", feat(100_000, 100_000, 50_000, 1.2), 8, TVOpt, 8},
		// Unpinned: the planner picks procs too. Large dense graph on an
		// 8-way cap should take the full-width TV-filter plan.
		{"free-dense", feat(100_000, 400_000, 6, 3), 0, TVFilter, 8},
		{"free-tiny", feat(100, 150, 8, 2), 0, Sequential, 1},
	}
	for _, tc := range cases {
		d := p.Decide(tc.f, tc.pinned, true)
		if d.Engine != tc.wantEngine || d.Procs != tc.wantProcs {
			t.Errorf("%s: got (%s, p=%d), want (%s, p=%d)\ncandidates: %+v",
				tc.name, d.Engine, d.Procs, tc.wantEngine, tc.wantProcs, d.Candidates)
		}
		if d.Explored {
			t.Errorf("%s: frozen planner explored", tc.name)
		}
	}
}

// TestFrozenDeterministic asserts a frozen planner is a pure function of its
// inputs: identical feature vectors always produce identical decisions.
func TestFrozenDeterministic(t *testing.T) {
	p := New(Config{MaxProcs: 8, Frozen: true, Registry: obs.NewRegistry()})
	f := feat(50_000, 200_000, 7, 3)
	first := p.Decide(f, 0, false)
	for i := 0; i < 100; i++ {
		if d := p.Decide(f, 0, false); d.Engine != first.Engine || d.Procs != first.Procs || d.Explored {
			t.Fatalf("decision %d diverged: %+v vs %+v", i, d, first)
		}
	}
}

// TestBreakerFilterProperty is the safety-net property: across a sweep of
// feature vectors and every subset of open breakers, the planner never
// returns an engine its Allow filter rejected — except the sequential
// fallback when the filter rejects everything.
func TestBreakerFilterProperty(t *testing.T) {
	feats := []Features{
		feat(0, 0, 0, 0),
		feat(100, 150, 8, 2),
		feat(100_000, 400_000, 6, 3),
		feat(100_000, 150_000, 9, 2),
		feat(100_000, 100_000, 50_000, 1.2),
		feat(1_000_000, 8_000_000, 5, 20),
	}
	for mask := 0; mask < 1<<len(EngineOrder); mask++ {
		open := map[string]bool{}
		for i, eng := range EngineOrder {
			if mask&(1<<i) != 0 {
				open[eng] = true
			}
		}
		p := New(Config{
			MaxProcs: 8,
			Registry: obs.NewRegistry(),
			Allow:    func(eng string) bool { return !open[eng] },
		})
		for _, f := range feats {
			for _, pinned := range []int{0, 1, 4} {
				d := p.Decide(f, pinned, false)
				if !open[d.Engine] {
					continue
				}
				// A rejected engine may only appear as the all-filtered
				// sequential fallback.
				if d.Engine != Sequential || mask != 1<<len(EngineOrder)-1 {
					t.Fatalf("mask %05b: planner chose open-breaker engine %s (pinned=%d, f=%+v)",
						mask, d.Engine, pinned, f)
				}
			}
		}
	}
}

// TestObserveShiftsChoice feeds the online model latencies that contradict
// the prior and checks the decision flips: the adaptive planner must be able
// to learn its prior wrong.
func TestObserveShiftsChoice(t *testing.T) {
	p := New(Config{MaxProcs: 1, Registry: obs.NewRegistry(), ExploreEvery: -1})
	f := feat(100_000, 400_000, 6, 3)
	if d := p.Decide(f, 1, false); d.Engine != FastBCC {
		t.Fatalf("before observations: got %s, want %s", d.Engine, FastBCC)
	}
	// Report fast-bcc as catastrophically slow and sequential as fast; a
	// handful of samples should outweigh the prior's pseudo-count.
	for i := 0; i < 32; i++ {
		p.Observe(f, FastBCC, 1, 2*time.Second)
		p.Observe(f, Sequential, 1, 5*time.Millisecond)
	}
	if d := p.Decide(f, 1, true); d.Engine != Sequential {
		t.Fatalf("after observations: got %s, want %s\ncandidates: %+v", d.Engine, Sequential, d.Candidates)
	}
}

// TestExplorationCadence checks the deterministic exploration counter: with
// ExploreEvery=4 exactly every 4th decision in a bucket is an exploration,
// and it dispatches the runner-up rather than the winner.
func TestExplorationCadence(t *testing.T) {
	p := New(Config{MaxProcs: 1, Registry: obs.NewRegistry(), ExploreEvery: 4})
	f := feat(100_000, 400_000, 6, 3)
	var explored, total int
	winner := map[bool]map[string]int{false: {}, true: {}}
	for i := 0; i < 40; i++ {
		d := p.Decide(f, 1, false)
		total++
		if d.Explored {
			explored++
		}
		winner[d.Explored][d.Engine]++
	}
	if explored != total/4 {
		t.Fatalf("explored %d of %d decisions, want %d", explored, total, total/4)
	}
	if len(winner[false]) != 1 || winner[false][FastBCC] == 0 {
		t.Fatalf("non-explored decisions not constant: %v", winner[false])
	}
	if winner[true][FastBCC] != 0 {
		t.Fatalf("explorations dispatched the winner: %v", winner[true])
	}
}

// TestHistorySeeding checks the coarse per-engine history only matters for
// cold buckets and is capped: a huge history sample count must not swamp the
// prior entirely.
func TestHistorySeeding(t *testing.T) {
	hist := map[string]time.Duration{Sequential: 4 * time.Millisecond, FastBCC: 900 * time.Millisecond}
	p := New(Config{
		MaxProcs:     1,
		Registry:     obs.NewRegistry(),
		ExploreEvery: -1,
		History: func(eng string) (time.Duration, int64) {
			d, ok := hist[eng]
			if !ok {
				return 0, 0
			}
			return d, 1_000_000
		},
	})
	f := feat(100_000, 400_000, 6, 3)
	d := p.Decide(f, 1, true)
	if d.Engine != Sequential {
		t.Fatalf("history says sequential is 200x faster, planner chose %s\ncandidates: %+v", d.Engine, d.Candidates)
	}
}

// TestAllFilteredFallsBackToSequential pins the path-of-last-resort contract
// and its metric.
func TestAllFilteredFallsBackToSequential(t *testing.T) {
	p := New(Config{MaxProcs: 8, Registry: obs.NewRegistry(), Allow: func(string) bool { return false }})
	d := p.Decide(feat(100_000, 400_000, 6, 3), 0, false)
	if d.Engine != Sequential || d.Procs != 1 {
		t.Fatalf("got (%s, p=%d), want (%s, p=1)", d.Engine, d.Procs, Sequential)
	}
	if s := p.Snapshot(); s.Fallbacks != 1 {
		t.Fatalf("fallbacks = %d, want 1", s.Fallbacks)
	}
}

// TestFeaturesOfCaches checks identity-keyed caching: the same *EdgeList is
// extracted once, a different graph is extracted separately.
func TestFeaturesOfCaches(t *testing.T) {
	p := New(Config{MaxProcs: 2, Registry: obs.NewRegistry()})
	g := &graph.EdgeList{N: 5, Edges: []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 3}, {U: 3, V: 4}}}
	f1 := p.FeaturesOf(g)
	f2 := p.FeaturesOf(g)
	if f1 != f2 {
		t.Fatalf("cache returned different vectors: %+v vs %+v", f1, f2)
	}
	if got := p.Snapshot(); got.Observations != 0 {
		t.Fatalf("unexpected observations: %+v", got)
	}
	if n := extractionCount(p); n != 1 {
		t.Fatalf("extractions = %d, want 1", n)
	}
	h := &graph.EdgeList{N: 3, Edges: []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}}}
	_ = p.FeaturesOf(h)
	if n := extractionCount(p); n != 2 {
		t.Fatalf("extractions after second graph = %d, want 2", n)
	}
}

func extractionCount(p *Planner) int64 { return p.extractions.Load() }

// TestSnapshotCounts sanity-checks the /statsz section numbers.
func TestSnapshotCounts(t *testing.T) {
	p := New(Config{MaxProcs: 4, Registry: obs.NewRegistry(), ExploreEvery: -1})
	f := feat(100_000, 400_000, 6, 3)
	for i := 0; i < 5; i++ {
		d := p.Decide(f, 0, false)
		p.Observe(f, d.Engine, d.Procs, 10*time.Millisecond)
	}
	s := p.Snapshot()
	if s.Mode != "adaptive" || s.Decisions != 5 || s.Observations != 5 || s.BucketsSeen != 0 {
		// BucketsSeen counts exploration counters; ExploreEvery<0 never
		// increments them.
		t.Fatalf("snapshot: %+v", s)
	}
	var n int64
	for _, v := range s.ByEngine {
		n += v
	}
	if n != 5 {
		t.Fatalf("by_engine sums to %d, want 5: %+v", n, s.ByEngine)
	}
}
