package plan

import (
	"fmt"
	"sort"
	"strconv"
	"sync"
	"time"

	"bicc/internal/graph"
	"bicc/internal/obs"
	"bicc/internal/par"
)

// Config parameterizes a Planner. The zero value is usable: all engines
// allowed, adaptive mode, default exploration cadence, metrics on the
// process-wide registry.
type Config struct {
	// MaxProcs caps the parallelism degree the planner may choose; 0 means
	// par.Procs(0) (GOMAXPROCS).
	MaxProcs int
	// Frozen makes decisions from the prior alone — no observed-latency
	// blending, no exploration — so a frozen planner is a pure function of
	// the feature vector. Differential and golden tests run frozen.
	Frozen bool
	// Allow filters the candidate engine set; nil allows everything. The
	// service wires the PR 2 circuit breakers here so a tripped engine drops
	// out of consideration. When the filter rejects every engine the planner
	// falls back to the sequential baseline rather than returning nothing —
	// the same path of last resort the supervisor degrades to.
	Allow func(engine string) bool
	// History seeds the model for buckets with no observations yet, from any
	// coarser per-engine latency source (the service passes its per-algorithm
	// request histograms). It returns the observed mean and sample count for
	// an engine, (0, 0) when unknown.
	History func(engine string) (time.Duration, int64)
	// ExploreEvery is the deterministic exploration cadence: every Nth
	// decision in a feature bucket runs the runner-up candidate instead of
	// the winner, so the online model keeps learning about near-misses.
	// 0 means the default (every 16th); negative disables exploration.
	ExploreEvery int
	// PriorWeight is the pseudo-sample count backing the prior when blending
	// with observed means; 0 means the default (3). Higher values make the
	// planner slower to abandon the paper's rule.
	PriorWeight int
	// Registry receives the bicc_plan_* metrics; nil means obs.Default().
	Registry *obs.Registry
}

// Defaults for Config zero values.
const (
	defaultExploreEvery = 16
	defaultPriorWeight  = 3
	// historyWeightCap bounds how many samples the coarse per-engine history
	// counts for: it is not bucket-specific, so it must never drown out real
	// per-bucket observations.
	historyWeightCap = 8
	// featCacheCap bounds the feature cache (FIFO eviction). Entries are a
	// few dozen bytes; the registry holds far fewer live graphs than this.
	featCacheCap = 512
)

// Candidate is one scored (engine, procs) option, echoed by ?explain=1.
type Candidate struct {
	Engine string `json:"engine"`
	Procs  int    `json:"procs"`
	// PriorNs is the cost model's latency estimate.
	PriorNs int64 `json:"prior_ns"`
	// ObservedNs and Samples report the per-bucket online model's mean, when
	// any observations exist.
	ObservedNs int64 `json:"observed_ns,omitempty"`
	Samples    int64 `json:"samples,omitempty"`
	// ScoreNs is the blended estimate the decision ranks by (lower wins).
	ScoreNs int64 `json:"score_ns"`
}

// Decision is the planner's answer for one request.
type Decision struct {
	Engine string `json:"engine"`
	Procs  int    `json:"procs"`
	Bucket string `json:"bucket"`
	// Explored marks a deliberate runner-up dispatch.
	Explored bool `json:"explored,omitempty"`
	// Frozen marks a prior-only decision.
	Frozen bool `json:"frozen,omitempty"`
	// Candidates carries the scored slate, populated only when the caller
	// asked to explain.
	Candidates []Candidate `json:"candidates,omitempty"`
}

// Planner decides engine and parallelism per request and learns from
// observed latencies. Safe for concurrent use.
type Planner struct {
	cfg      config
	observed *obs.HistogramVec

	decisions    *obs.CounterVec
	procsCounter *obs.CounterVec
	explores     *obs.Counter
	observations *obs.Counter
	extractions  *obs.Counter
	fallbacks    *obs.Counter

	mu         sync.Mutex
	feats      map[string]Features
	featOrder  []string
	bucketSeen map[string]int64 // per-bucket decision counter, drives exploration
	byEngine   map[string]int64
	byProcs    map[string]int64
	total      int64
	explored   int64
	fellBack   int64
	obsCount   int64
}

// config is Config with defaults resolved.
type config struct {
	Config
	maxProcs     int
	exploreEvery int
	priorWeight  float64
}

// New builds a Planner and registers its bicc_plan_* metric families.
func New(c Config) *Planner {
	rc := config{Config: c}
	rc.maxProcs = c.MaxProcs
	if rc.maxProcs <= 0 {
		rc.maxProcs = par.Procs(0)
	}
	rc.exploreEvery = c.ExploreEvery
	if rc.exploreEvery == 0 {
		rc.exploreEvery = defaultExploreEvery
	}
	rc.priorWeight = float64(c.PriorWeight)
	if rc.priorWeight <= 0 {
		rc.priorWeight = defaultPriorWeight
	}
	reg := c.Registry
	if reg == nil {
		reg = obs.Default()
	}
	p := &Planner{
		cfg: rc,
		observed: reg.HistogramVec("bicc_plan_observed_seconds",
			"Clean-run latency observed by the planner's online model.",
			"engine", "procs", "bucket"),
		decisions: reg.CounterVec("bicc_plan_decisions_total",
			"Planner decisions by chosen engine.", "engine"),
		procsCounter: reg.CounterVec("bicc_plan_procs_total",
			"Planner decisions by chosen parallelism degree.", "procs"),
		explores: reg.Counter("bicc_plan_explorations_total",
			"Decisions that deliberately dispatched the runner-up candidate."),
		observations: reg.Counter("bicc_plan_observations_total",
			"Latency samples fed back into the online model."),
		extractions: reg.Counter("bicc_plan_feature_extractions_total",
			"Feature-vector computations (cache misses)."),
		fallbacks: reg.Counter("bicc_plan_fallbacks_total",
			"Decisions where every candidate engine was filtered out and the planner fell back to sequential."),
		feats:      map[string]Features{},
		bucketSeen: map[string]int64{},
		byEngine:   map[string]int64{},
		byProcs:    map[string]int64{},
	}
	return p
}

// Frozen reports whether the planner decides from the prior alone.
func (p *Planner) Frozen() bool { return p.cfg.Frozen }

// MaxProcs returns the effective parallelism cap.
func (p *Planner) MaxProcs() int { return p.cfg.maxProcs }

// FeaturesOf returns g's feature vector, computing it on first sight and
// caching by identity afterwards. The key includes the graph's dimensions so
// a recycled allocation at the same address with different contents misses;
// a stale hit after an in-place append is harmless — the plan may be
// slightly off, the answer is still exact.
func (p *Planner) FeaturesOf(g *graph.EdgeList) Features {
	key := featKey(g)
	p.mu.Lock()
	if f, ok := p.feats[key]; ok {
		p.mu.Unlock()
		return f
	}
	p.mu.Unlock()

	f := Extract(p.cfg.maxProcs, g)
	p.extractions.Inc()

	p.mu.Lock()
	if _, ok := p.feats[key]; !ok {
		if len(p.featOrder) >= featCacheCap {
			delete(p.feats, p.featOrder[0])
			p.featOrder = p.featOrder[1:]
		}
		p.feats[key] = f
		p.featOrder = append(p.featOrder, key)
	}
	p.mu.Unlock()
	return f
}

func featKey(g *graph.EdgeList) string {
	return fmt.Sprintf("%p:%d:%d", g, g.N, len(g.Edges))
}

// Decide picks the engine and parallelism for a request with feature vector
// f. pinnedProcs > 0 means the caller fixed the parallelism degree (the
// request named procs explicitly) and the planner only chooses the engine;
// 0 lets the planner choose both. When explain is true the returned Decision
// carries the full scored candidate slate.
func (p *Planner) Decide(f Features, pinnedProcs int, explain bool) Decision {
	bucket := f.Bucket()
	cands := p.score(f, pinnedProcs, bucket)

	d := Decision{Bucket: bucket, Frozen: p.cfg.Frozen}
	best := 0
	if len(cands) > 1 && !p.cfg.Frozen && p.cfg.exploreEvery > 0 {
		p.mu.Lock()
		n := p.bucketSeen[bucket]
		p.bucketSeen[bucket] = n + 1
		p.mu.Unlock()
		if (n+1)%int64(p.cfg.exploreEvery) == 0 {
			best = 1 // deterministic counter-based exploration: runner-up
			d.Explored = true
		}
	}
	d.Engine = cands[best].Engine
	d.Procs = cands[best].Procs
	if explain {
		d.Candidates = cands
	}

	p.decisions.With(d.Engine).Inc()
	p.procsCounter.With(strconv.Itoa(d.Procs)).Inc()
	if d.Explored {
		p.explores.Inc()
	}
	p.mu.Lock()
	p.total++
	p.byEngine[d.Engine]++
	p.byProcs[strconv.Itoa(d.Procs)]++
	if d.Explored {
		p.explored++
	}
	p.mu.Unlock()
	return d
}

// score builds and ranks the candidate slate, best first.
func (p *Planner) score(f Features, pinnedProcs int, bucket string) []Candidate {
	procsSet := p.procsChoices(pinnedProcs)
	cands := make([]Candidate, 0, len(EngineOrder)*len(procsSet))
	for _, eng := range EngineOrder {
		if p.cfg.Allow != nil && !p.cfg.Allow(eng) {
			continue
		}
		for _, procs := range procsSet {
			if eng == Sequential && procs > 1 {
				continue // the DFS baseline cannot use more workers
			}
			cands = append(cands, p.scoreOne(f, eng, procs, bucket))
		}
	}
	if len(cands) == 0 {
		// Every engine filtered out (all breakers open): sequential is the
		// supervisor's own last resort, so degrade to it rather than fail.
		p.fallbacks.Inc()
		p.mu.Lock()
		p.fellBack++
		p.mu.Unlock()
		cands = append(cands, p.scoreOne(f, Sequential, 1, bucket))
	}
	// Stable sort keeps EngineOrder (then ascending procs) as the tie-break.
	sort.SliceStable(cands, func(i, j int) bool { return cands[i].ScoreNs < cands[j].ScoreNs })
	return cands
}

// scoreOne blends the prior with per-bucket observations (and, for cold
// buckets, the coarse per-engine history) into one estimate.
func (p *Planner) scoreOne(f Features, engine string, procs int, bucket string) Candidate {
	c := Candidate{Engine: engine, Procs: procs}
	prior := priorNs(engine, procs, f)
	c.PriorNs = int64(prior)
	if p.cfg.Frozen {
		c.ScoreNs = c.PriorNs
		return c
	}

	num := prior * p.cfg.priorWeight
	den := p.cfg.priorWeight
	if h, ok := p.observed.Peek(engine, strconv.Itoa(procs), bucket); ok {
		if s := h.Snapshot(); s.Count > 0 {
			c.ObservedNs = s.MeanN
			c.Samples = s.Count
			num += float64(s.MeanN) * float64(s.Count)
			den += float64(s.Count)
		}
	}
	if c.Samples == 0 && p.cfg.History != nil {
		// Cold bucket: let the engine's overall latency history nudge the
		// prior, capped so it cannot outvote future per-bucket samples.
		if mean, n := p.cfg.History(engine); n > 0 && mean > 0 {
			w := float64(n)
			if w > historyWeightCap {
				w = historyWeightCap
			}
			num += float64(mean.Nanoseconds()) * w
			den += w
		}
	}
	c.ScoreNs = int64(num / den)
	return c
}

// procsChoices returns the parallelism degrees to consider: the pinned value
// alone, or powers of two up to (and including) the cap.
func (p *Planner) procsChoices(pinned int) []int {
	if pinned > 0 {
		return []int{pinned}
	}
	var out []int
	for q := 1; q < p.cfg.maxProcs; q *= 2 {
		out = append(out, q)
	}
	return append(out, p.cfg.maxProcs)
}

// Observe feeds one clean-run latency back into the online model. Callers
// must only report representative runs — no degraded fallbacks, no
// cancelled or fault-retried attempts — or the model learns the wrong
// engine costs.
func (p *Planner) Observe(f Features, engine string, procs int, d time.Duration) {
	if procs < 1 {
		procs = 1
	}
	p.observed.With(engine, strconv.Itoa(procs), f.Bucket()).Observe(d)
	p.observations.Inc()
	p.mu.Lock()
	p.obsCount++
	p.mu.Unlock()
}

// Snapshot is the /statsz plan section.
type Snapshot struct {
	Mode         string           `json:"mode"` // "adaptive" or "frozen"
	MaxProcs     int              `json:"max_procs"`
	Decisions    int64            `json:"decisions"`
	ByEngine     map[string]int64 `json:"by_engine,omitempty"`
	ByProcs      map[string]int64 `json:"by_procs,omitempty"`
	Explorations int64            `json:"explorations"`
	Observations int64            `json:"observations"`
	Fallbacks    int64            `json:"fallbacks,omitempty"`
	BucketsSeen  int              `json:"buckets_seen"`
}

// Snapshot returns current planner counters for reporting.
func (p *Planner) Snapshot() Snapshot {
	p.mu.Lock()
	defer p.mu.Unlock()
	s := Snapshot{
		Mode:         "adaptive",
		MaxProcs:     p.cfg.maxProcs,
		Decisions:    p.total,
		Explorations: p.explored,
		Observations: p.obsCount,
		Fallbacks:    p.fellBack,
		BucketsSeen:  len(p.bucketSeen),
	}
	if p.cfg.Frozen {
		s.Mode = "frozen"
	}
	if len(p.byEngine) > 0 {
		s.ByEngine = make(map[string]int64, len(p.byEngine))
		for k, v := range p.byEngine {
			s.ByEngine[k] = v
		}
	}
	if len(p.byProcs) > 0 {
		s.ByProcs = make(map[string]int64, len(p.byProcs))
		for k, v := range p.byProcs {
			s.ByProcs[k] = v
		}
	}
	return s
}
