package plan

import (
	"testing"

	"bicc/internal/graph"
)

// checkFeatures asserts the invariants Extract promises on any input: total
// (no panic, checked by arriving here), all classes in range, and the bucket
// string well-formed.
func checkFeatures(t *testing.T, g *graph.EdgeList, f Features) {
	t.Helper()
	if f.N != int(g.N) || f.M != len(g.Edges) {
		t.Fatalf("dimensions: got n=%d m=%d, want n=%d m=%d", f.N, f.M, g.N, len(g.Edges))
	}
	if f.SizeClass < 0 || f.SizeClass > 8 {
		t.Fatalf("size class %d out of range", f.SizeClass)
	}
	if f.DensityClass < 0 || f.DensityClass > 2 {
		t.Fatalf("density class %d out of range", f.DensityClass)
	}
	if f.DiamClass < DiamLow || f.DiamClass > DiamHigh {
		t.Fatalf("diam class %d out of range", f.DiamClass)
	}
	if f.SkewClass < 0 || f.SkewClass > 2 {
		t.Fatalf("skew class %d out of range", f.SkewClass)
	}
	if f.Depth < 0 || (f.N > 0 && int(f.Depth) >= f.N) {
		t.Fatalf("depth %d impossible for n=%d", f.Depth, f.N)
	}
	if f.Density < 0 || f.Skew < 0 {
		t.Fatalf("negative density %g or skew %g", f.Density, f.Skew)
	}
	if b := f.Bucket(); len(b) < len("s0d0D0k0") {
		t.Fatalf("malformed bucket %q", b)
	}
}

// TestExtractShapes covers the named degenerate shapes directly, so the
// invariants hold even when the fuzzer only runs its seed corpus.
func TestExtractShapes(t *testing.T) {
	star := func(n int32) *graph.EdgeList {
		g := &graph.EdgeList{N: n}
		for v := int32(1); v < n; v++ {
			g.Edges = append(g.Edges, graph.Edge{U: 0, V: v})
		}
		return g
	}
	chain := func(n int32) *graph.EdgeList {
		g := &graph.EdgeList{N: n}
		for v := int32(1); v < n; v++ {
			g.Edges = append(g.Edges, graph.Edge{U: v - 1, V: v})
		}
		return g
	}
	cases := map[string]*graph.EdgeList{
		"empty":         {N: 0},
		"single-vertex": {N: 1},
		"edgeless":      {N: 100},
		"self-loop":     {N: 1, Edges: []graph.Edge{{U: 0, V: 0}}},
		"parallel":      {N: 2, Edges: []graph.Edge{{U: 0, V: 1}, {U: 0, V: 1}, {U: 1, V: 0}}},
		"star":          star(200),
		"chain":         chain(300),
		"disconnected": {N: 10, Edges: []graph.Edge{
			{U: 0, V: 1}, {U: 1, V: 2}, {U: 5, V: 6}, {U: 6, V: 7}, {U: 7, V: 5},
		}},
		"isolated-zero": {N: 5, Edges: []graph.Edge{{U: 3, V: 4}}},
	}
	for name, g := range cases {
		f := Extract(2, g)
		checkFeatures(t, g, f)
		switch name {
		case "chain":
			if f.DiamClass != DiamHigh {
				t.Errorf("chain: diam class %d, want high", f.DiamClass)
			}
		case "star":
			if f.SkewClass != 2 {
				t.Errorf("star: skew class %d, want 2", f.SkewClass)
			}
			if f.DiamClass != DiamLow {
				t.Errorf("star: diam class %d, want low", f.DiamClass)
			}
		case "empty", "single-vertex", "edgeless":
			if f.Depth != 0 || f.Skew != 0 {
				t.Errorf("%s: depth=%d skew=%g, want zeros", name, f.Depth, f.Skew)
			}
		}
	}
}

// FuzzFeatures decodes arbitrary bytes into a graph and asserts Extract's
// invariants. The encoding: first two bytes pick n in [0, 512), the rest
// pair up into edges with endpoints reduced mod n — every byte string is a
// valid graph, including multi-edges, self-loops, and isolated vertices.
func FuzzFeatures(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 1})
	f.Add([]byte{1, 0, 0, 0})                         // single vertex, self-loop
	f.Add([]byte{0, 16, 0, 1, 1, 2, 2, 3})            // short chain
	f.Add([]byte{2, 0, 0, 1, 0, 2, 0, 3, 0, 4, 0, 5}) // star-ish
	f.Fuzz(func(t *testing.T, data []byte) {
		g := &graph.EdgeList{}
		if len(data) >= 2 {
			g.N = int32(data[0])<<1 | int32(data[1])>>7
			data = data[2:]
		}
		if g.N > 0 {
			for i := 0; i+1 < len(data); i += 2 {
				g.Edges = append(g.Edges, graph.Edge{
					U: int32(data[i]) % g.N,
					V: int32(data[i+1]) % g.N,
				})
			}
		}
		for _, p := range []int{1, 2, 4} {
			checkFeatures(t, g, Extract(p, g))
		}
	})
}
