// Package plan is the adaptive query planner: given a graph's shape it
// picks which biconnected-components engine to run and at what parallelism
// degree, replacing the paper's static §4 rule ("TV-filter when m >= 4n,
// TV-opt otherwise, sequential at p=1") with a per-request decision.
//
// The planner combines two signals:
//
//   - a prior cost model encoding the paper's experimental findings plus the
//     FAST-BCC promotion gate (the skeleton engine beats every TV variant at
//     low processor counts on every density, BENCH_2.json), and
//   - an online per-(engine, procs, feature-bucket) latency model fed by the
//     observed run times the service already records, so the prior is
//     corrected by what this machine actually measures.
//
// Decisions never affect answers — every engine produces the same canonical
// labeling — only latency, so the planner is free to explore. A Frozen
// planner scores candidates from the prior alone and never explores, giving
// the deterministic decisions differential and golden tests need.
package plan

import (
	"fmt"
	"math/bits"

	"bicc/internal/graph"
)

// Diameter classes, from the BFS-forest depth estimate relative to log n:
// random graphs sit near the Palmer bound (diameter ~2, class low), meshes
// and small-world graphs in the middle, chains and lollipops high. TV-filter
// and FAST-BCC both run level-synchronous BFS phases costing O(d) rounds, so
// the class is the prior's main lever against the paper's rule.
const (
	DiamLow = iota
	DiamMid
	DiamHigh
)

// Features is the per-graph feature vector the planner decides from. All
// fields derive from one O(n + m) analysis pass (degree scan plus a
// two-sweep BFS), cached per graph, so planning adds no per-request
// asymptotics.
type Features struct {
	// N and M are the vertex and edge counts.
	N int `json:"n"`
	M int `json:"m"`
	// Density is m/n (0 for an empty graph) — the axis of the paper's §4
	// rule.
	Density float64 `json:"density"`
	// Skew is max degree / mean degree (0 for an edgeless graph): high skew
	// means hub-dominated inputs where static edge partitioning load-balances
	// badly.
	Skew float64 `json:"skew"`
	// Depth is the two-sweep BFS diameter estimate (exact on trees, a tight
	// lower bound in practice), measured in the component of the first edge's
	// endpoint.
	Depth int32 `json:"depth"`

	// SizeClass buckets total work n + m by powers of 16, DensityClass
	// buckets Density at the paper's thresholds (< 2, [2, 4), >= 4),
	// DiamClass compares Depth against log n (DiamLow/Mid/High), and
	// SkewClass buckets Skew at 4 and 16.
	SizeClass    int `json:"size_class"`
	DensityClass int `json:"density_class"`
	DiamClass    int `json:"diam_class"`
	SkewClass    int `json:"skew_class"`
}

// Bucket renders the feature classes as the model key (and metric label)
// "s<size>d<density>D<diam>k<skew>". Graphs sharing a bucket share latency
// history.
func (f Features) Bucket() string {
	return fmt.Sprintf("s%dd%dD%dk%d", f.SizeClass, f.DensityClass, f.DiamClass, f.SkewClass)
}

// work is the planner's size measure: vertices plus both edge directions,
// the unit every engine's running time is linear in (diameter terms aside).
func (f Features) work() float64 {
	return float64(f.N) + 2*float64(f.M)
}

// Extract computes the feature vector of g with p analysis workers. It is
// total on arbitrary inputs: empty, edgeless, and disconnected graphs all
// produce in-range classes.
func Extract(p int, g *graph.EdgeList) Features {
	f := Features{N: int(g.N), M: len(g.Edges)}
	if f.N > 0 {
		f.Density = float64(f.M) / float64(f.N)
	}
	if f.M > 0 {
		_, ds := graph.Degrees(p, g)
		if ds.Mean > 0 {
			f.Skew = float64(ds.Max) / ds.Mean
		}
		// Sweep from an endpoint of the first edge, not vertex 0: vertex 0
		// may be isolated, and an edgeless component says nothing about the
		// part of the graph the engines will spend their time in.
		f.Depth = graph.DiameterTwoSweep(p, g, g.Edges[0].U)
	}
	f.SizeClass = sizeClass(f.N + f.M)
	f.DensityClass = densityClass(f.Density)
	f.DiamClass = diamClass(f.Depth, f.N)
	f.SkewClass = skewClass(f.Skew)
	return f
}

// sizeClass buckets total work by powers of 16: 0 for < 16, 1 for < 256, …
// Nine classes cover anything that fits in memory.
func sizeClass(work int) int {
	if work < 0 {
		work = 0
	}
	c := (bits.Len(uint(work)) + 3) / 4
	if c > 8 {
		c = 8
	}
	return c
}

// densityClass buckets m/n at the paper's §4 thresholds.
func densityClass(density float64) int {
	switch {
	case density >= 4:
		return 2
	case density >= 2:
		return 1
	default:
		return 0
	}
}

// diamClass compares the depth estimate against log2 n: random graphs have
// depth O(log n) (class low), anything past 16·log n behaves like a chain
// (class high).
func diamClass(depth int32, n int) int {
	logn := bits.Len(uint(n))
	if logn < 1 {
		logn = 1
	}
	switch {
	case int(depth) > 16*logn:
		return DiamHigh
	case int(depth) > 2*logn:
		return DiamMid
	default:
		return DiamLow
	}
}

// skewClass buckets max/mean degree at 4 and 16.
func skewClass(skew float64) int {
	switch {
	case skew >= 16:
		return 2
	case skew >= 4:
		return 1
	default:
		return 0
	}
}
