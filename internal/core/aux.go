package core

import (
	"bicc/internal/conncomp"
	"bicc/internal/graph"
	"bicc/internal/par"
	"bicc/internal/prefix"
	"bicc/internal/treecomp"
)

// auxGraph is the paper's G' = (V', E'): V' has one vertex per edge of G
// (tree edge (u,p(u)) ↦ u; the j-th nontree edge ↦ n+j), and E' connects
// edges of G related under R'c.
type auxGraph struct {
	n     int32        // |V'| = n + #nontree
	edges []graph.Edge // E'
	ntIdx []int32      // nontree edge i of G ↦ aux vertex n + ntIdx[i]
	// condCount[k] is the number of R'c pairs contributed by condition k+1
	// (the per-condition sizes the paper reports for Fig. 1).
	condCount [3]int
}

// buildAux implements Algorithm 1: number the nontree edges with a prefix
// sum, test the three R'c conditions in parallel into a 3m-slot staging
// area (slots [0,m) for condition 1, [m,2m) for condition 2, [2m,3m) for
// condition 3), and compact the staged edges with a prefix sum.
//
// Conditions (preorder comparisons, per §2):
//  1. nontree g=(u,v) with pre(v) < pre(u) pairs g with tree edge (u,p(u)).
//  2. nontree (u,v) with u,v unrelated pairs (u,p(u)) with (v,p(v)).
//  3. tree edge (u, v=p(u)) with v not a root pairs (u,p(u)) with (v,p(v))
//     iff low(u) < pre(v) or high(u) >= pre(v)+size(v).
func buildAux(p int, edges []graph.Edge, isTree []bool, td *treecomp.TreeData, low, high []int32) *auxGraph {
	n := td.N
	m := len(edges)
	// Number nontree edges by prefix sum (the paper's N array).
	ntIdx := make([]int32, m)
	par.For(p, m, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			if !isTree[i] {
				ntIdx[i] = 1
			}
		}
	})
	numNontree := prefix.ExclusiveSum32(p, ntIdx)
	aux := &auxGraph{n: n + numNontree, ntIdx: ntIdx}
	// Staging area L' of 3m slots.
	staged := make([]graph.Edge, 3*m)
	valid := make([]bool, 3*m)
	par.For(p, m, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			e := edges[i]
			if isTree[i] {
				// Condition 3: child side u, parent side v = p(u).
				u, v := e.U, e.V
				if td.Parent[u] != v {
					u, v = v, u
				}
				if !td.IsRoot(v) && (low[u] < td.Pre[v] || high[u] >= td.Pre[v]+td.Size[v]) {
					staged[2*m+i] = graph.Edge{U: u, V: v}
					valid[2*m+i] = true
				}
				continue
			}
			u, v := e.U, e.V
			if td.Pre[u] < td.Pre[v] {
				u, v = v, u // ensure pre(v) < pre(u)
			}
			// Condition 1: nontree edge joins the tree edge above its
			// higher-preorder endpoint.
			staged[i] = graph.Edge{U: u, V: n + ntIdx[i]}
			valid[i] = true
			// Condition 2: unrelated endpoints join their two tree edges.
			if !td.Related(u, v) {
				staged[m+i] = graph.Edge{U: u, V: v}
				valid[m+i] = true
			}
		}
	})
	aux.edges = prefix.CompactInto(p, staged, func(i int) bool { return valid[i] }, make([]graph.Edge, 3*m))
	for k := 0; k < 3; k++ {
		aux.condCount[k] = par.CountTrue(p, m, func(i int) bool { return valid[k*m+i] })
	}
	return aux
}

// tvTail finishes any TV variant: build G' (Label-edge step), run
// Shiloach–Vishkin connected components on it (Connected-components step),
// and write raw component labels into edgeComp. sw records the two phases.
// origID maps local edge indices to positions in edgeComp (nil means
// identity); TV-filter uses it to overlay results computed on the reduced
// graph onto the full edge list. Labels are raw (not densified) so callers
// can keep translating filtered edges before calling FinishResult.
func tvTail(c *par.Canceler, p int, sw *Stopwatch, edges []graph.Edge, isTree []bool,
	td *treecomp.TreeData, low, high []int32, edgeComp []int32, origID []int32) {
	aux := buildAux(p, edges, isTree, td, low, high)
	sw.Lap(PhaseLabelEdge)
	labels := conncomp.ShiloachVishkinC(c, p, aux.n, aux.edges)
	if c.Err() != nil {
		return
	}
	n := td.N
	par.For(p, len(edges), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			var auxID int32
			if isTree[i] {
				e := edges[i]
				child := e.U
				if td.Parent[child] != e.V {
					child = e.V
				}
				auxID = child
			} else {
				auxID = n + aux.ntIdx[i]
			}
			pos := int32(i)
			if origID != nil {
				pos = origID[i]
			}
			edgeComp[pos] = labels[auxID]
		}
	})
	sw.Lap(PhaseConnComp)
}

// FinishResult densifies the raw component labels into first-occurrence
// order over the edge list — the canonical numbering every engine emits —
// and wraps them with the stopwatch's phase breakdown. Exported so sibling
// engines (internal/fastbcc) share the exact canonicalization step the
// incremental layer's byte-equality contract depends on.
func FinishResult(edgeComp []int32, sw *Stopwatch) *Result {
	k := conncomp.Normalize(edgeComp)
	return &Result{NumComp: k, EdgeComp: edgeComp, Phases: sw.phases}
}
