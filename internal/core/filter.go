package core

import (
	"bicc/internal/graph"
	"bicc/internal/par"
)

// TVFilter is the paper's new algorithm (§4, Alg. 2): filter out nontree
// edges that are non-essential for biconnectivity before running TV.
//
//  1. Compute a breadth-first-search tree T of G (the BFS property is what
//     makes the filtering correct — Lemma 1 and Theorem 2).
//  2. Compute a spanning forest F of G − T (Shiloach–Vishkin).
//  3. Run the TV machinery on T ∪ F, a graph with at most 2(n−1) edges.
//  4. Every filtered edge e = (u,v) in G − (T ∪ F) with pre(v) < pre(u)
//     belongs to the block of the tree edge (u, p(u)) by condition 1.
//
// Asymptotically nothing improves, but step 2 discards at least
// max(m − 2(n−1), 0) edges, which shrinks the Low-high, Label-edge and
// Connected-components steps — the Fig. 3/4 win.
func TVFilter(p int, g *graph.EdgeList) (*Result, error) {
	return Custom(p, g, TVFilterConfig())
}

// TVFilterConfig returns the Config preset for TV-filter.
func TVFilterConfig() Config {
	return Config{SpanningTree: SpanBFS, Filter: true}
}

// TVFilterC is TVFilter with cooperative cancellation.
func TVFilterC(c *par.Canceler, p int, g *graph.EdgeList) (*Result, error) {
	cfg := TVFilterConfig()
	cfg.Cancel = c
	return Custom(p, g, cfg)
}

// FilteredEdgeCount reports how many edges TV-filter is guaranteed to
// remove for a graph with n vertices and m edges (the paper's
// max(m − 2(n−1), 0) lower bound).
func FilteredEdgeCount(n int32, m int) int {
	f := m - 2*(int(n)-1)
	if f < 0 {
		return 0
	}
	return f
}
