// Package core implements the paper's biconnected components algorithms:
// the sequential Hopcroft–Tarjan baseline ("Sequential" in Fig. 3), the
// direct SMP emulation of Tarjan–Vishkin (TV-SMP, §3.1), the optimized
// adaptation (TV-opt, §3.2), and the new edge-filtering algorithm
// (TV-filter, §4 / Alg. 2), plus the auxiliary-graph construction of
// Alg. 1 shared by all TV variants.
package core

import (
	"sync/atomic"
	"time"

	"bicc/internal/graph"
	"bicc/internal/obs"
	"bicc/internal/par"
	"bicc/internal/prefix"
)

// Phase names matching the Fig. 4 breakdown.
const (
	PhaseSpanningTree = "spanning-tree"
	PhaseEulerTour    = "euler-tour"
	PhaseRoot         = "root"
	PhaseLowHigh      = "low-high"
	PhaseLabelEdge    = "label-edge"
	PhaseConnComp     = "connected-components"
	PhaseFiltering    = "filtering"
	// PhaseSkeleton is the fence-classification + skeleton-construction step
	// of the FAST-BCC engine; the TV variants never record it, mirroring how
	// only TV-filter records PhaseFiltering.
	PhaseSkeleton = "skeleton"
)

// PhaseOrder is the canonical ordering of phases for breakdown reports.
var PhaseOrder = []string{
	PhaseSpanningTree, PhaseEulerTour, PhaseRoot,
	PhaseLowHigh, PhaseLabelEdge, PhaseConnComp, PhaseFiltering,
	PhaseSkeleton,
}

// Phase is one timed step of an algorithm run.
type Phase struct {
	Name     string
	Duration time.Duration
}

// Result is the biconnected components decomposition of a graph.
type Result struct {
	// NumComp is the number of biconnected components (blocks). Every edge
	// belongs to exactly one; a bridge forms a singleton block.
	NumComp int
	// EdgeComp[i] is the dense block id (0..NumComp-1) of edge i.
	EdgeComp []int32
	// Phases is the per-step timing breakdown (Fig. 4), in execution order.
	Phases []Phase
}

// PhaseDuration returns the total duration recorded under name.
func (r *Result) PhaseDuration(name string) time.Duration {
	var d time.Duration
	for _, ph := range r.Phases {
		if ph.Name == name {
			d += ph.Duration
		}
	}
	return d
}

// Total returns the sum of all phase durations.
func (r *Result) Total() time.Duration {
	var d time.Duration
	for _, ph := range r.Phases {
		d += ph.Duration
	}
	return d
}

// Stopwatch accumulates named phases. When constructed with a span it also
// emits every lap as a completed child span, so the Result.Phases breakdown
// and an attached obs trace are two views of the same measurements and can
// never disagree. It is exported so sibling engines (internal/fastbcc)
// record phases through the exact same mechanism as the TV pipelines.
type Stopwatch struct {
	phases []Phase
	last   time.Time
	span   *obs.Span
}

// NewStopwatch returns a stopwatch whose laps are mirrored as child spans of
// sp (a nil sp records no spans).
func NewStopwatch(sp *obs.Span) *Stopwatch {
	return &Stopwatch{last: time.Now(), span: sp}
}

// Lap records the time since the previous lap (or construction) under name.
func (s *Stopwatch) Lap(name string) {
	now := time.Now()
	s.phases = append(s.phases, Phase{Name: name, Duration: now.Sub(s.last)})
	s.span.ChildInterval(name, s.last, now)
	s.last = now
}

// Articulation returns the articulation points (cut vertices) implied by a
// block decomposition: a vertex is an articulation point exactly when its
// incident edges fall into at least two distinct blocks. The scan over
// edges runs on GOMAXPROCS workers; any-writer-wins races on the per-vertex
// "first block seen" slot are resolved with CAS, and a disagreeing second
// writer marks the vertex as a cut.
func Articulation(g *graph.EdgeList, edgeComp []int32) []int32 {
	p := par.Procs(0)
	first := make([]int32, g.N) // first block seen per vertex, -1 none
	multi := make([]int32, g.N) // 0/1 flag, written racily (idempotent)
	par.For(p, int(g.N), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			first[i] = -1
		}
	})
	par.ForDynamic(p, len(g.Edges), 0, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			e := g.Edges[i]
			c := edgeComp[i]
			for _, v := range [2]int32{e.U, e.V} {
				cur := atomic.LoadInt32(&first[v])
				if cur == -1 && atomic.CompareAndSwapInt32(&first[v], -1, c) {
					continue
				}
				if atomic.LoadInt32(&first[v]) != c {
					atomic.StoreInt32(&multi[v], 1)
				}
			}
		}
	})
	cutIdx := prefix.Compact(p, int(g.N), func(v int) bool { return multi[v] != 0 })
	return cutIdx
}

// Bridges returns the indices of bridge edges: edges whose block contains
// exactly one edge.
func Bridges(g *graph.EdgeList, edgeComp []int32, numComp int) []int32 {
	p := par.Procs(0)
	count := make([]int32, numComp)
	par.ForDynamic(p, len(edgeComp), 0, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			atomic.AddInt32(&count[edgeComp[i]], 1)
		}
	})
	return prefix.Compact(p, len(edgeComp), func(i int) bool { return count[edgeComp[i]] == 1 })
}
