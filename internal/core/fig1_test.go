package core

import (
	"testing"

	"bicc/internal/eulertour"
	"bicc/internal/graph"
	"bicc/internal/spantree"
	"bicc/internal/treecomp"
)

// TestPaperFigure1 reproduces the paper's worked example exactly: graph G1
// (Fig. 1) under its drawn spanning tree has an R'c relation of size 11 —
// 4, 4 and 3 pairs from conditions 1, 2 and 3 — and its auxiliary graph
// has 10 vertices (one per edge) and 11 edges. G2, obtained by deleting the
// non-essential nontree edges e1 and e2, has R'c of size 7 (2, 2, 3) and an
// 8-vertex, 7-edge auxiliary graph.
//
// Reconstruction of Fig. 1 from the condition lists: the tree is a root r
// with three chains below it — t1=(x1,r), t3=(y1,x1); t5=(x2,r),
// t6=(y2,x2); t2=(x3,r), t4=(y3,x3) — and the nontree edges are
// e1=(x1,x2), e2=(x2,x3), e3=(y1,y2), e4=(y2,y3). That assignment yields
// precisely the paper's three condition lists.
func TestPaperFigure1(t *testing.T) {
	// Vertex ids: r=0, x1=1, y1=2, x2=3, y2=4, x3=5, y3=6 (preorder of the
	// drawn tree when chains are visited left to right).
	const (
		r, x1, y1, x2, y2, x3, y3 = 0, 1, 2, 3, 4, 5, 6
	)
	tree := []graph.Edge{
		{U: x1, V: r},  // t1
		{U: y1, V: x1}, // t3
		{U: x2, V: r},  // t5
		{U: y2, V: x2}, // t6
		{U: x3, V: r},  // t2
		{U: y3, V: x3}, // t4
	}
	nontreeG1 := []graph.Edge{
		{U: x1, V: x2}, // e1
		{U: x2, V: x3}, // e2
		{U: y1, V: y2}, // e3
		{U: y2, V: y3}, // e4
	}

	check := func(name string, nontree []graph.Edge, wantCond [3]int, wantAuxV, wantAuxE int) {
		t.Helper()
		g := &graph.EdgeList{N: 7, Edges: append(append([]graph.Edge(nil), tree...), nontree...)}
		// The drawn spanning tree, imposed explicitly.
		f := &spantree.RootedForest{
			N:          7,
			Parent:     make([]int32, 7),
			ParentEdge: make([]int32, 7),
			Roots:      []int32{r},
		}
		f.Parent[r] = r
		f.ParentEdge[r] = -1
		for i, e := range tree {
			f.Parent[e.U] = e.V
			f.ParentEdge[e.U] = int32(i)
		}
		seq := eulertour.DFSOrder(1, g.Edges, f)
		td, err := treecomp.Compute(1, seq)
		if err != nil {
			t.Fatal(err)
		}
		isTree := f.TreeEdgeMark(1, len(g.Edges))
		low, high := treecomp.LowHigh(1, td, g.Edges, isTree)
		aux := buildAux(1, g.Edges, isTree, td, low, high)
		for k := 0; k < 3; k++ {
			if aux.condCount[k] != wantCond[k] {
				t.Errorf("%s: condition %d contributes %d pairs, paper says %d",
					name, k+1, aux.condCount[k], wantCond[k])
			}
		}
		// |V'| = one vertex per edge of G: n tree-edge slots are vertex ids
		// of children; the paper counts only used ids (one per edge).
		usedAux := len(tree) + len(nontree)
		if usedAux != wantAuxV {
			t.Errorf("%s: aux graph should have %d used vertices, got %d", name, wantAuxV, usedAux)
		}
		if len(aux.edges) != wantAuxE {
			t.Errorf("%s: aux graph has %d edges, paper says %d", name, len(aux.edges), wantAuxE)
		}
		// Both graphs are biconnected: the pipeline must report one block.
		res, err := TVOpt(1, g)
		if err != nil {
			t.Fatal(err)
		}
		if res.NumComp != 1 {
			t.Errorf("%s: %d blocks, want 1 (Fig. 1 graphs are biconnected)", name, res.NumComp)
		}
	}

	check("G1", nontreeG1, [3]int{4, 4, 3}, 10, 11)
	check("G2", nontreeG1[2:], [3]int{2, 2, 3}, 8, 7)
}
