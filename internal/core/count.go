package core

import (
	"bicc/internal/conncomp"
	"bicc/internal/eulertour"
	"bicc/internal/graph"
	"bicc/internal/par"
	"bicc/internal/prefix"
	"bicc/internal/spantree"
	"bicc/internal/treecomp"
)

// CountBlocks returns the exact number of biconnected components, computed
// with the TV-filter pipeline (the block labels of the filtered edges never
// change the count, so step 4 of Alg. 2 is skipped).
func CountBlocks(p int, g *graph.EdgeList) (int, error) {
	res, err := TVFilter(p, g)
	if err != nil {
		return 0, err
	}
	return res.NumComp, nil
}

// TwoBFSBlockCount implements the counting rule the paper states as the
// immediate corollary of Theorem 2: the first BFS computes a rooted
// spanning tree T, the second pass a spanning forest F of G−T, and "the
// number of components in F is the number of biconnected components in G"
// (bridges, which own no nontree edge, counted separately via low/high).
//
// Reproduction note: the corollary as stated is only an UPPER bound.
// Theorem 2 guarantees each component of G−T lies inside one block, but two
// different components can lie inside the same block. Smallest
// counterexample found while reproducing the paper (5 vertices, 6 edges):
//
//	edges {0,2} {0,4} {1,2} {2,4} {1,3} {0,3}
//
// is biconnected (one block), yet its BFS tree from vertex 0 leaves the
// nontree edges {4,2} and {1,3} in two disjoint components of G−T, so the
// rule reports 2. TestTwoBFSBlockCountIsUpperBound documents the bound;
// use CountBlocks for the exact value.
func TwoBFSBlockCount(p int, g *graph.EdgeList) (int, error) {
	p = par.Procs(p)
	m := len(g.Edges)
	c := graph.ToCSR(p, g)
	t := spantree.BFS(p, c)
	inT := t.TreeEdgeMark(p, m)
	// Non-trivial blocks (upper bound): components of G−T containing at
	// least one edge.
	labels := conncomp.ShiloachVishkin(p, g.N, filterEdges(p, g.Edges, inT, false))
	nontrivial := countEdgeComponents(g.Edges, inT, labels)
	// Bridges via low/high on the BFS tree: tree edge (v, p(v)) is a bridge
	// iff no nontree edge leaves v's subtree.
	seq := eulertour.DFSOrder(p, g.Edges, t)
	td, err := treecomp.Compute(p, seq)
	if err != nil {
		return 0, err
	}
	low, high := treecomp.LowHigh(p, td, g.Edges, inT)
	bridges := par.CountTrue(p, int(g.N), func(v int) bool {
		if td.IsRoot(int32(v)) {
			return false
		}
		return low[v] == td.Pre[v] && high[v] < td.Pre[v]+td.Size[v]
	})
	return nontrivial + bridges, nil
}

// filterEdges returns the edges whose isTree flag equals keepTree.
func filterEdges(p int, edges []graph.Edge, isTree []bool, keepTree bool) []graph.Edge {
	ids := prefix.Compact(p, len(edges), func(i int) bool { return isTree[i] == keepTree })
	out := make([]graph.Edge, len(ids))
	par.For(p, len(ids), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out[i] = edges[ids[i]]
		}
	})
	return out
}

// countEdgeComponents counts the distinct component labels that appear on
// at least one nontree edge's endpoint pair.
func countEdgeComponents(edges []graph.Edge, isTree []bool, labels []int32) int {
	seen := make(map[int32]struct{}, 16)
	for i, e := range edges {
		if isTree[i] {
			continue
		}
		seen[labels[e.U]] = struct{}{}
	}
	return len(seen)
}
