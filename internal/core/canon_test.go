// This test lives in package core_test (not core) so it can pull in the
// fastbcc engine, which itself imports core.
package core_test

import (
	"fmt"
	"testing"

	"bicc/internal/core"
	"bicc/internal/fastbcc"
	"bicc/internal/gen"
	"bicc/internal/graph"
)

// TestCanonicalLabels pins the property the incremental layer builds on: all
// five engines emit the same EdgeComp byte for byte, because every engine
// densifies block ids into first-occurrence order over the edge list. A
// partial recomputation stitched into that numbering is then
// indistinguishable from a from-scratch run of any engine.
func TestCanonicalLabels(t *testing.T) {
	families := map[string]*graph.EdgeList{
		"random":      gen.RandomConnected(200, 600, 7),
		"torus":       gen.Torus(10, 12),
		"caterpillar": gen.Caterpillar(30, 4),
		"dense":       gen.Dense(40, 0.5, 11),
		"mesh":        gen.Mesh(9, 9),
	}
	type engine struct {
		name string
		run  func(g *graph.EdgeList) (*core.Result, error)
	}
	engines := []engine{
		{"sequential", func(g *graph.EdgeList) (*core.Result, error) { return core.SequentialC(nil, g) }},
		{"tv-smp", func(g *graph.EdgeList) (*core.Result, error) { return core.Custom(3, g, core.TVSMPConfig()) }},
		{"tv-opt", func(g *graph.EdgeList) (*core.Result, error) { return core.Custom(3, g, core.TVOptConfig()) }},
		{"tv-filter", func(g *graph.EdgeList) (*core.Result, error) { return core.Custom(3, g, core.TVFilterConfig()) }},
		{"fast-bcc", func(g *graph.EdgeList) (*core.Result, error) { return fastbcc.Run(3, g, fastbcc.Config{}) }},
	}
	for fname, g := range families {
		want, err := engines[0].run(g)
		if err != nil {
			t.Fatalf("%s/sequential: %v", fname, err)
		}
		// The canonical numbering is first-occurrence order: walking the
		// edge list, each label must be either already seen or exactly the
		// next unused id.
		next := int32(0)
		for i, c := range want.EdgeComp {
			if c > next {
				t.Fatalf("%s: edge %d has label %d before %d was used", fname, i, c, next)
			}
			if c == next {
				next++
			}
		}
		for _, e := range engines[1:] {
			got, err := e.run(g)
			if err != nil {
				t.Fatalf("%s/%s: %v", fname, e.name, err)
			}
			if got.NumComp != want.NumComp {
				t.Fatalf("%s/%s: NumComp=%d, sequential %d", fname, e.name, got.NumComp, want.NumComp)
			}
			if fmt.Sprint(got.EdgeComp) != fmt.Sprint(want.EdgeComp) {
				t.Fatalf("%s/%s: EdgeComp differs from sequential", fname, e.name)
			}
		}
	}
}
