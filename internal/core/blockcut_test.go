package core

import (
	"testing"
	"testing/quick"

	"bicc/internal/conncomp"
	"bicc/internal/gen"
	"bicc/internal/graph"
)

func TestBlockCutTreeBowtie(t *testing.T) {
	g := gen.BlockChain(2, 3) // two triangles sharing vertex 2
	res := Sequential(g)
	bct := NewBlockCutTree(g, res.EdgeComp, res.NumComp)
	if bct.NumBlocks != 2 {
		t.Fatalf("blocks=%d, want 2", bct.NumBlocks)
	}
	if len(bct.Cuts) != 1 || bct.Cuts[0] != 2 {
		t.Fatalf("cuts=%v, want [2]", bct.Cuts)
	}
	if len(bct.CutBlocks[0]) != 2 {
		t.Errorf("cut vertex in %d blocks, want 2", len(bct.CutBlocks[0]))
	}
	if got := bct.NumTreeEdges(); got != 2 {
		t.Errorf("tree edges=%d, want 2", got)
	}
	if leaves := bct.LeafBlocks(); len(leaves) != 2 {
		t.Errorf("leaf blocks=%v, want both", leaves)
	}
	for b := 0; b < 2; b++ {
		if len(bct.BlockVertices[b]) != 3 {
			t.Errorf("block %d has %d vertices, want 3", b, len(bct.BlockVertices[b]))
		}
	}
}

func TestBlockCutTreeChain(t *testing.T) {
	g := gen.Chain(5) // 4 bridge blocks, 3 interior cut vertices
	res := Sequential(g)
	bct := NewBlockCutTree(g, res.EdgeComp, res.NumComp)
	if bct.NumBlocks != 4 {
		t.Fatalf("blocks=%d, want 4", bct.NumBlocks)
	}
	if len(bct.Cuts) != 3 {
		t.Fatalf("cuts=%v, want 3 interior vertices", bct.Cuts)
	}
	// Path of blocks: 2 leaves, 2 interior.
	if leaves := bct.LeafBlocks(); len(leaves) != 2 {
		t.Errorf("leaf blocks=%v, want 2", leaves)
	}
	// The block-cut tree of a connected graph is a tree: nodes = edges + 1.
	if bct.NumTreeEdges() != bct.NumNodes()-1 {
		t.Errorf("tree edges=%d nodes=%d: not a tree", bct.NumTreeEdges(), bct.NumNodes())
	}
}

func TestBlockCutTreeBiconnected(t *testing.T) {
	g := gen.Mesh(4, 4)
	res := Sequential(g)
	bct := NewBlockCutTree(g, res.EdgeComp, res.NumComp)
	if bct.NumBlocks != 1 || len(bct.Cuts) != 0 {
		t.Errorf("mesh: blocks=%d cuts=%d, want 1,0", bct.NumBlocks, len(bct.Cuts))
	}
	if len(bct.BlockVertices[0]) != 16 {
		t.Errorf("block covers %d vertices, want 16", len(bct.BlockVertices[0]))
	}
}

func TestBlockCutTreeIsolatedVertices(t *testing.T) {
	g := gen.Disconnected(gen.Cycle(3), &graph.EdgeList{N: 2})
	res := Sequential(g)
	bct := NewBlockCutTree(g, res.EdgeComp, res.NumComp)
	if bct.NumBlocks != 1 || len(bct.Cuts) != 0 {
		t.Errorf("blocks=%d cuts=%d, want 1,0", bct.NumBlocks, len(bct.Cuts))
	}
	for v := int32(3); v < 5; v++ {
		if len(bct.VertexBlocks[v]) != 0 {
			t.Errorf("isolated vertex %d in blocks %v", v, bct.VertexBlocks[v])
		}
	}
}

// Property: the block-cut structure of any graph satisfies the forest
// identity per connected component, cut vertices match Articulation, and
// every vertex with degree >= 1 appears in at least one block.
func TestQuickBlockCutTreeInvariants(t *testing.T) {
	f := func(seed int64, nn, mm uint8) bool {
		n := int(nn%50) + 1
		maxM := n * (n - 1) / 2
		m := int(mm) % (maxM + 1)
		g := gen.Random(n, m, seed)
		res := Sequential(g)
		bct := NewBlockCutTree(g, res.EdgeComp, res.NumComp)
		// Cut vertices must equal Articulation's output.
		arts := Articulation(g, res.EdgeComp)
		if len(arts) != len(bct.Cuts) {
			return false
		}
		for i := range arts {
			if arts[i] != bct.Cuts[i] {
				return false
			}
		}
		// Forest identity: nodes - edges = number of connected components
		// that contain at least one edge.
		labels := conncomp.UnionFind(g.N, g.Edges)
		compHasEdge := map[int32]bool{}
		for _, e := range g.Edges {
			compHasEdge[labels[e.U]] = true
		}
		if bct.NumNodes()-bct.NumTreeEdges() != len(compHasEdge) {
			return false
		}
		// Degree >= 1 vertices appear in >= 1 block; isolated in none.
		deg := make([]int, n)
		for _, e := range g.Edges {
			deg[e.U]++
			deg[e.V]++
		}
		for v := 0; v < n; v++ {
			if (deg[v] > 0) != (len(bct.VertexBlocks[v]) > 0) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
