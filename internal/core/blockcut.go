package core

import (
	"sort"

	"bicc/internal/graph"
)

// BlockCutTree is the bipartite tree (forest, for disconnected graphs)
// whose nodes are the blocks and the cut vertices of a graph, with an edge
// between a cut vertex and every block that contains it. It is the standard
// structure for reasoning about single-point-of-failure containment in
// fault-tolerant network design — the paper's motivating application.
type BlockCutTree struct {
	NumBlocks int
	// Cuts lists the cut vertices; node ids are NumBlocks + index.
	Cuts []int32
	// BlockCuts[b] lists, ascending, the cut vertices on block b's boundary.
	BlockCuts [][]int32
	// CutBlocks[i] lists, ascending, the blocks containing Cuts[i].
	CutBlocks [][]int32
	// BlockVertices[b] lists, ascending, all vertices of block b.
	BlockVertices [][]int32
	// VertexBlocks[v] lists, ascending, the blocks containing vertex v
	// (len > 1 exactly for cut vertices; empty for isolated vertices).
	VertexBlocks [][]int32
}

// NewBlockCutTree assembles the block-cut tree from a block decomposition.
func NewBlockCutTree(g *graph.EdgeList, edgeComp []int32, numComp int) *BlockCutTree {
	t := &BlockCutTree{
		NumBlocks:     numComp,
		BlockCuts:     make([][]int32, numComp),
		BlockVertices: make([][]int32, numComp),
		VertexBlocks:  make([][]int32, g.N),
	}
	// Vertex-block incidences, deduplicated.
	for i, e := range g.Edges {
		c := edgeComp[i]
		for _, v := range [2]int32{e.U, e.V} {
			if !containsInt32(t.VertexBlocks[v], c) {
				t.VertexBlocks[v] = append(t.VertexBlocks[v], c)
			}
		}
	}
	cutIndex := make(map[int32]int32)
	for v := int32(0); v < g.N; v++ {
		blocks := t.VertexBlocks[v]
		sort.Slice(blocks, func(i, j int) bool { return blocks[i] < blocks[j] })
		for _, b := range blocks {
			t.BlockVertices[b] = append(t.BlockVertices[b], v)
		}
		if len(blocks) > 1 {
			cutIndex[v] = int32(len(t.Cuts))
			t.Cuts = append(t.Cuts, v)
			for _, b := range blocks {
				t.BlockCuts[b] = append(t.BlockCuts[b], v)
			}
		}
	}
	t.CutBlocks = make([][]int32, len(t.Cuts))
	for i, v := range t.Cuts {
		t.CutBlocks[i] = t.VertexBlocks[v]
	}
	return t
}

func containsInt32(xs []int32, v int32) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}

// NumNodes returns the number of tree nodes (blocks + cut vertices).
func (t *BlockCutTree) NumNodes() int { return t.NumBlocks + len(t.Cuts) }

// NumTreeEdges returns the number of block–cut incidence edges.
func (t *BlockCutTree) NumTreeEdges() int {
	n := 0
	for _, cs := range t.BlockCuts {
		n += len(cs)
	}
	return n
}

// LeafBlocks returns the blocks incident to at most one cut vertex — the
// periphery of the tree. In network-augmentation heuristics, pairing leaf
// blocks is the standard way to reduce the number of cut vertices.
func (t *BlockCutTree) LeafBlocks() []int32 {
	var leaves []int32
	for b := 0; b < t.NumBlocks; b++ {
		if len(t.BlockCuts[b]) <= 1 {
			leaves = append(leaves, int32(b))
		}
	}
	return leaves
}
