package core

import (
	"bicc/internal/graph"
	"bicc/internal/par"
)

// TVSMP is the coarse-grained SMP emulation of the original Tarjan–Vishkin
// algorithm (§3.1). It follows TV's six steps literally:
//
//  1. Spanning-tree via the Shiloach–Vishkin-derived algorithm (unrooted).
//  2. Euler-tour via sample-sorted circular adjacency lists.
//  3. Root-tree / tree computations via Helman–JáJá list ranking on the
//     linked tour.
//  4. Low-high.
//  5. Label-edge (Alg. 1).
//  6. Connected-components of G' via Shiloach–Vishkin.
//
// It is the baseline whose parallel overheads the paper measures: the sort
// in step 2 and the list ranking in step 3 are the costs TV-opt removes.
func TVSMP(p int, g *graph.EdgeList) (*Result, error) {
	return Custom(p, g, TVSMPConfig())
}

// TVSMPConfig returns the Config preset for TV-SMP; callers add their own
// Cancel/Span before passing it to Custom.
func TVSMPConfig() Config {
	return Config{SpanningTree: SpanSV, Ranker: RankHelmanJaja}
}

// TVSMPC is TVSMP with cooperative cancellation.
func TVSMPC(c *par.Canceler, p int, g *graph.EdgeList) (*Result, error) {
	cfg := TVSMPConfig()
	cfg.Cancel = c
	return Custom(p, g, cfg)
}

// TVSMPWyllie is TVSMP with Wyllie pointer jumping instead of Helman–JáJá
// list ranking — the ablation knob isolating the tree-computation cost.
func TVSMPWyllie(p int, g *graph.EdgeList) (*Result, error) {
	return Custom(p, g, Config{SpanningTree: SpanSV, Ranker: RankWyllie})
}

// TVOpt is the optimized SMP adaptation (§3.2): the Spanning-tree and
// Root-tree steps are merged by the work-stealing traversal that computes a
// rooted tree directly, the Euler tour is built cache-friendly in DFS order,
// and the tree computations use prefix sums over arrays instead of list
// ranking. Steps 4–6 are shared with TV-SMP.
func TVOpt(p int, g *graph.EdgeList) (*Result, error) {
	return Custom(p, g, TVOptConfig())
}

// TVOptConfig returns the Config preset for TV-opt.
func TVOptConfig() Config {
	return Config{SpanningTree: SpanWorkStealing}
}

// TVOptC is TVOpt with cooperative cancellation.
func TVOptC(c *par.Canceler, p int, g *graph.EdgeList) (*Result, error) {
	cfg := TVOptConfig()
	cfg.Cancel = c
	return Custom(p, g, cfg)
}

// rootsFromLabels extracts one representative vertex per component from the
// SV label array (representatives satisfy Labels[v] == v).
func rootsFromLabels(labels []int32) []int32 {
	idx := make([]int32, 0, 16)
	for v, l := range labels {
		if l == int32(v) {
			idx = append(idx, int32(v))
		}
	}
	return idx
}
