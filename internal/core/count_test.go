package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"bicc/internal/gen"
	"bicc/internal/graph"
)

func TestCountBlocksKnown(t *testing.T) {
	for name, fx := range fixtures() {
		want := Sequential(fx.g).NumComp
		got, err := CountBlocks(2, fx.g)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if got != want {
			t.Errorf("%s: CountBlocks=%d, full algorithm says %d", name, got, want)
		}
	}
}

// Property: CountBlocks matches the full sequential algorithm exactly.
func TestQuickCountBlocksMatchesFull(t *testing.T) {
	f := func(seed int64, nn, mm uint8) bool {
		n := int(nn%80) + 1
		maxM := n * (n - 1) / 2
		m := int(mm) % (maxM + 1)
		g := gen.Random(n, m, seed)
		want := Sequential(g).NumComp
		got, err := CountBlocks(2, g)
		return err == nil && got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// TestTwoBFSBlockCountIsUpperBound documents the reproduction finding about
// the paper's Theorem 2 corollary: the two-BFS count never undercounts, and
// it matches exactly on structures whose blocks each own a single
// component of G−T — but it can overcount in general.
func TestTwoBFSBlockCountIsUpperBound(t *testing.T) {
	f := func(seed int64, nn, mm uint8) bool {
		n := int(nn%60) + 1
		maxM := n * (n - 1) / 2
		m := int(mm) % (maxM + 1)
		g := gen.Random(n, m, seed)
		exact := Sequential(g).NumComp
		bound, err := TwoBFSBlockCount(2, g)
		return err == nil && bound >= exact
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestTwoBFSBlockCountCounterexample pins the 5-vertex instance on which
// the corollary (as stated in the paper) overcounts: the graph is
// biconnected, yet its BFS tree splits the nontree edges into two disjoint
// components of G−T.
func TestTwoBFSBlockCountCounterexample(t *testing.T) {
	g := &graph.EdgeList{N: 5, Edges: []graph.Edge{
		{U: 0, V: 2}, {U: 0, V: 4}, {U: 1, V: 2},
		{U: 2, V: 4}, {U: 1, V: 3}, {U: 0, V: 3},
	}}
	exact := Sequential(g).NumComp
	if exact != 1 {
		t.Fatalf("fixture is expected to be biconnected, got %d blocks", exact)
	}
	bound, err := TwoBFSBlockCount(1, g)
	if err != nil {
		t.Fatal(err)
	}
	if bound != 2 {
		t.Errorf("TwoBFSBlockCount=%d; the documented counterexample expects the corollary to report 2", bound)
	}
}

// On trees and simple cycles the corollary is exact.
func TestTwoBFSBlockCountExactCases(t *testing.T) {
	cases := map[string]struct {
		g    *graph.EdgeList
		want int
	}{
		"chain":      {gen.Chain(10), 9},
		"cycle":      {gen.Cycle(8), 1},
		"star":       {gen.Star(6), 5},
		"blockchain": {gen.BlockChain(4, 3), 4},
		"binarytree": {gen.BinaryTree(15), 14},
	}
	for name, c := range cases {
		got, err := TwoBFSBlockCount(2, c.g)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if got != c.want {
			t.Errorf("%s: TwoBFSBlockCount=%d, want %d", name, got, c.want)
		}
	}
}

func TestCountBlocksLargeRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	for trial := 0; trial < 5; trial++ {
		n := 500 + rng.Intn(1500)
		m := n + rng.Intn(4*n)
		g := gen.RandomConnected(n, m, int64(trial))
		want := Sequential(g).NumComp
		got, err := CountBlocks(4, g)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Errorf("trial %d (n=%d m=%d): CountBlocks=%d, want %d", trial, n, m, got, want)
		}
		bound, err := TwoBFSBlockCount(4, g)
		if err != nil {
			t.Fatal(err)
		}
		if bound < want {
			t.Errorf("trial %d: TwoBFSBlockCount=%d undercounts %d", trial, bound, want)
		}
	}
}
