package core

import (
	"testing"

	"bicc/internal/conncomp"
	"bicc/internal/gen"
	"bicc/internal/graph"
)

func TestCustomRejectsFilterWithoutBFS(t *testing.T) {
	g := gen.Cycle(5)
	for _, span := range []SpanningTreeKind{SpanSV, SpanWorkStealing} {
		if _, err := Custom(2, g, Config{SpanningTree: span, Filter: true}); err == nil {
			t.Errorf("filter with spanning tree kind %d accepted (Lemma 1 requires BFS)", span)
		}
	}
}

func TestCustomRejectsUnknownKind(t *testing.T) {
	if _, err := Custom(2, gen.Cycle(4), Config{SpanningTree: SpanningTreeKind(99)}); err == nil {
		t.Error("unknown spanning tree kind accepted")
	}
}

// TestCustomAllConfigurations cross-validates every valid engine
// combination against the sequential baseline.
func TestCustomAllConfigurations(t *testing.T) {
	configs := []struct {
		name string
		cfg  Config
	}{
		{"sv-hj-rmq", Config{SpanningTree: SpanSV, Ranker: RankHelmanJaja, LowHigh: LowHighRMQ}},
		{"sv-wyllie-rmq", Config{SpanningTree: SpanSV, Ranker: RankWyllie, LowHigh: LowHighRMQ}},
		{"sv-hj-bottomup", Config{SpanningTree: SpanSV, Ranker: RankHelmanJaja, LowHigh: LowHighBottomUp}},
		{"ws-rmq", Config{SpanningTree: SpanWorkStealing, LowHigh: LowHighRMQ}},
		{"ws-bottomup", Config{SpanningTree: SpanWorkStealing, LowHigh: LowHighBottomUp}},
		{"bfs-rmq", Config{SpanningTree: SpanBFS, LowHigh: LowHighRMQ}},
		{"bfs-bottomup", Config{SpanningTree: SpanBFS, LowHigh: LowHighBottomUp}},
		{"bfs-rmq-filter", Config{SpanningTree: SpanBFS, LowHigh: LowHighRMQ, Filter: true}},
		{"bfs-bottomup-filter", Config{SpanningTree: SpanBFS, LowHigh: LowHighBottomUp, Filter: true}},
		{"ws-partour", Config{SpanningTree: SpanWorkStealing, ParallelTour: true}},
		{"bfs-partour-filter", Config{SpanningTree: SpanBFS, Filter: true, ParallelTour: true}},
	}
	inputs := map[string]*graph.EdgeList{
		"random":       gen.Random(150, 400, 11),
		"sparse":       gen.Random(150, 100, 12),
		"dense":        gen.Dense(35, 0.7, 13),
		"chain":        gen.Chain(60),
		"disconnected": gen.Disconnected(gen.Cycle(5), gen.Star(6), &graph.EdgeList{N: 2}),
	}
	for _, tc := range configs {
		for gname, g := range inputs {
			want := Sequential(g)
			got, err := Custom(2, g, tc.cfg)
			if err != nil {
				t.Fatalf("%s/%s: %v", tc.name, gname, err)
			}
			if got.NumComp != want.NumComp {
				t.Errorf("%s/%s: NumComp=%d, want %d", tc.name, gname, got.NumComp, want.NumComp)
				continue
			}
			if len(g.Edges) > 0 && !conncomp.SamePartition(got.EdgeComp, want.EdgeComp) {
				t.Errorf("%s/%s: partition differs", tc.name, gname)
			}
		}
	}
}

// The presets must match their documented configurations' behavior.
func TestPresetsMatchCustom(t *testing.T) {
	g := gen.RandomConnected(200, 700, 14)
	seq := Sequential(g)
	presets := map[string]func(int, *graph.EdgeList) (*Result, error){
		"tv-smp":    TVSMP,
		"tv-wyllie": TVSMPWyllie,
		"tv-opt":    TVOpt,
		"tv-filter": TVFilter,
	}
	for name, run := range presets {
		got, err := run(2, g)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if got.NumComp != seq.NumComp || !conncomp.SamePartition(got.EdgeComp, seq.EdgeComp) {
			t.Errorf("%s: diverges from sequential", name)
		}
	}
}
