package core

import (
	"bicc/internal/conncomp"
	"bicc/internal/faults"
	"bicc/internal/graph"
	"bicc/internal/obs"
	"bicc/internal/par"
)

// Fault-injection point in the DFS, sharing the cadence of the cancellation
// poll (iter counts polls). The sequential engine is the fallback of last
// resort, so proving it too degrades to a typed error matters doubly.
var siteSeq = faults.RegisterSite("core.seq", true)

// Sequential computes biconnected components with Tarjan's linear-time
// depth-first-search algorithm [19] (with Hopcroft's edge-stack block
// extraction) — the "best sequential implementation" all parallel speedups
// in the paper are measured against. The implementation is iterative: an
// explicit DFS stack avoids goroutine-stack limits on deep graphs such as
// the paper's pathological chain.
func Sequential(g *graph.EdgeList) *Result {
	res, _ := SequentialC(nil, g)
	return res
}

// SequentialC is Sequential with cooperative cancellation, polled every few
// thousand DFS steps; it returns the cancellation cause when c trips
// mid-run. Like Custom it is a fault boundary: panics are recovered and
// returned as *par.PanicError.
func SequentialC(cn *par.Canceler, g *graph.EdgeList) (*Result, error) {
	return SequentialT(cn, nil, g)
}

// SequentialT is SequentialC with the run's single timed phase mirrored as
// a child span of sp (nil sp records nothing), matching Custom's per-phase
// span emission.
func SequentialT(cn *par.Canceler, sp *obs.Span, g *graph.EdgeList) (res *Result, err error) {
	defer func() {
		if v := recover(); v != nil {
			res, err = nil, par.AsPanicError(-1, v)
		}
	}()
	faults.Inject(cn, siteSeq, 0, 0)
	sw := NewStopwatch(sp)
	c := graph.ToCSR(1, g)
	n := int(g.N)
	m := len(g.Edges)
	edgeComp := make([]int32, m)
	for i := range edgeComp {
		edgeComp[i] = -1
	}
	disc := make([]int32, n)
	low := make([]int32, n)
	for i := range disc {
		disc[i] = -1
	}
	// DFS frames: vertex, cursor into its adjacency, and the edge that
	// discovered it (to skip on the way back and to distinguish the parent
	// edge from parallel edges).
	type frame struct {
		v        int32
		cursor   int32
		viaEdge  int32
		viaStart int32 // edge-stack depth when (parent, v) was pushed
	}
	stack := make([]frame, 0, 64)
	edgeStack := make([]int32, 0, m)
	var timer int32
	var numComp int32
	var steps int
	for s := int32(0); s < int32(n); s++ {
		if disc[s] != -1 {
			continue
		}
		disc[s] = timer
		low[s] = timer
		timer++
		stack = append(stack[:0], frame{v: s, cursor: c.Off[s], viaEdge: -1})
		for len(stack) > 0 {
			steps++
			if steps&0xfff == 0 {
				faults.Inject(cn, siteSeq, 0, steps>>12)
				if err := cn.Err(); err != nil {
					return nil, err
				}
			}
			fr := &stack[len(stack)-1]
			v := fr.v
			if fr.cursor < c.Off[v+1] {
				i := fr.cursor
				fr.cursor++
				w := c.Adj[i]
				id := c.EdgeID[i]
				if id == fr.viaEdge {
					continue // the tree edge we arrived by
				}
				if disc[w] == -1 {
					// Tree edge: push it and descend.
					edgeStack = append(edgeStack, id)
					disc[w] = timer
					low[w] = timer
					timer++
					stack = append(stack, frame{
						v: w, cursor: c.Off[w], viaEdge: id,
						viaStart: int32(len(edgeStack) - 1),
					})
				} else if disc[w] < disc[v] {
					// Back edge to an ancestor (each undirected edge handled
					// once, from the deeper endpoint).
					edgeStack = append(edgeStack, id)
					if disc[w] < low[v] {
						low[v] = disc[w]
					}
				}
				continue
			}
			// Retreat from v.
			stack = stack[:len(stack)-1]
			if len(stack) == 0 {
				break
			}
			parent := &stack[len(stack)-1]
			if low[v] < low[parent.v] {
				low[parent.v] = low[v]
			}
			if low[v] >= disc[parent.v] {
				// parent.v is a cut vertex (or the root finishing a block):
				// everything above the tree edge (parent.v, v) is one block.
				for int32(len(edgeStack)) > fr.viaStart {
					id := edgeStack[len(edgeStack)-1]
					edgeStack = edgeStack[:len(edgeStack)-1]
					edgeComp[id] = numComp
				}
				numComp++
			}
		}
	}
	sw.Lap("sequential-dfs")
	// Densify block ids into first-occurrence order over the edge list, the
	// same canonical numbering the TV engines emit from finishResult. The DFS
	// pops blocks in completion order, which is a different (if equally
	// valid) numbering; canonicalizing here makes all four engines produce
	// byte-identical EdgeComp for the same edge list, which the incremental
	// layer relies on to stitch partial recomputations into labelings that
	// match a from-scratch run of any engine.
	k := conncomp.Normalize(edgeComp)
	return &Result{NumComp: k, EdgeComp: edgeComp, Phases: sw.phases}, nil
}
