package core

import (
	"testing"
	"testing/quick"

	"bicc/internal/eulertour"
	"bicc/internal/gen"
	"bicc/internal/graph"
	"bicc/internal/spantree"
	"bicc/internal/treecomp"
)

// TestLemma1BFSNontreeEdgesUnrelated checks the paper's Lemma 1, the fact
// the whole filtering algorithm rests on: with a BFS spanning tree, no
// nontree edge joins an ancestor to a descendant. (BFS levels of adjacent
// vertices differ by at most one, while a nontree ancestral pair differs
// by at least two.)
func TestLemma1BFSNontreeEdgesUnrelated(t *testing.T) {
	f := func(seed int64, nn, mm uint8) bool {
		n := int(nn%80) + 2
		maxM := n * (n - 1) / 2
		m := int(mm) % (maxM + 1)
		g := gen.Random(n, m, seed)
		c := graph.ToCSR(1, g)
		tr := spantree.BFS(1, c)
		seq := eulertour.DFSOrder(1, g.Edges, tr)
		td, err := treecomp.Compute(1, seq)
		if err != nil {
			return false
		}
		inT := tr.TreeEdgeMark(1, len(g.Edges))
		for i, e := range g.Edges {
			if inT[i] {
				continue
			}
			if td.Related(e.U, e.V) {
				return false // Lemma 1 violated
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestLemma1FailsForNonBFSTrees exhibits why the BFS requirement is not an
// artifact: a path spanning tree of a cycle leaves the closing edge as a
// nontree edge between the two ends of the path — a textbook ancestral
// pair. This is the Fig. 2(d) situation, and the reason Custom refuses
// Filter with non-BFS trees.
func TestLemma1FailsForNonBFSTrees(t *testing.T) {
	g := gen.Cycle(6)
	// Path spanning tree 0-1-2-3-4-5 imposed by hand (a DFS tree of the
	// cycle); the nontree edge is {5,0}.
	f := &spantree.RootedForest{
		N:          g.N,
		Parent:     []int32{0, 0, 1, 2, 3, 4},
		ParentEdge: []int32{-1, 0, 1, 2, 3, 4},
		Roots:      []int32{0},
	}
	seq := eulertour.DFSOrder(1, g.Edges, f)
	td, err := treecomp.Compute(1, seq)
	if err != nil {
		t.Fatal(err)
	}
	closing := g.Edges[5] // {5, 0}
	if !td.Related(closing.U, closing.V) {
		t.Fatal("the cycle-closing edge should join an ancestor to a descendant under a path tree")
	}
	// The BFS tree of the same cycle keeps the nontree edge unrelated.
	tr := spantree.BFS(1, graph.ToCSR(1, g))
	seqB := eulertour.DFSOrder(1, g.Edges, tr)
	tdB, err := treecomp.Compute(1, seqB)
	if err != nil {
		t.Fatal(err)
	}
	inT := tr.TreeEdgeMark(1, len(g.Edges))
	for i, e := range g.Edges {
		if !inT[i] && tdB.Related(e.U, e.V) {
			t.Fatalf("BFS tree: nontree edge (%d,%d) is ancestral — Lemma 1 violated", e.U, e.V)
		}
	}
}
