package core

import (
	"fmt"

	"bicc/internal/eulertour"
	"bicc/internal/faults"
	"bicc/internal/graph"
	"bicc/internal/obs"
	"bicc/internal/par"
	"bicc/internal/prefix"
	"bicc/internal/spantree"
	"bicc/internal/treecomp"
)

// Fault-injection points: at engine entry (iter = the SpanningTreeKind, so a
// rule can target one TV variant) and between pipeline phases (iter = phase
// ordinal). Both receive the run's canceler.
var (
	siteEntry = faults.RegisterSite("core.entry", true)
	sitePhase = faults.RegisterSite("core.pipeline", true)
)

// SpanningTreeKind selects step 1 of the TV pipeline.
type SpanningTreeKind int

const (
	// SpanSV is the Shiloach–Vishkin-derived unrooted spanning tree of the
	// original TV (forces the sort-based Euler tour and list ranking).
	SpanSV SpanningTreeKind = iota
	// SpanWorkStealing is the Bader–Cong rooted traversal (TV-opt).
	SpanWorkStealing
	// SpanBFS is the level-synchronous BFS tree (required by TV-filter).
	SpanBFS
)

// RankerKind selects the list-ranking algorithm for the sort-based tour.
type RankerKind int

const (
	// RankHelmanJaja is the sublist-based O(n) ranker.
	RankHelmanJaja RankerKind = iota
	// RankWyllie is O(n log n) pointer jumping.
	RankWyllie
)

// LowHighKind selects the subtree-aggregation engine for step 4.
type LowHighKind int

const (
	// LowHighRMQ answers subtree folds with a blocked sparse-table RMQ
	// over the preorder array.
	LowHighRMQ LowHighKind = iota
	// LowHighBottomUp sweeps levels rootward; O(height) rounds.
	LowHighBottomUp
)

// Config assembles a TV pipeline from interchangeable engines. The presets
// are: TV-SMP = {SpanSV, RankHelmanJaja, LowHighRMQ, no filter}; TV-opt =
// {SpanWorkStealing, LowHighRMQ, no filter}; TV-filter = {SpanBFS,
// LowHighRMQ, filter}.
type Config struct {
	SpanningTree SpanningTreeKind
	Ranker       RankerKind // used only with SpanSV
	LowHigh      LowHighKind
	// Cancel, when non-nil, is polled inside the engines' parallel loops and
	// between pipeline phases; tripping it makes Custom return the
	// cancellation cause promptly instead of finishing the run.
	Cancel *par.Canceler
	// Span, when non-nil, receives one completed child span per pipeline
	// phase (the same laps that populate Result.Phases), wiring the run
	// into a caller's obs trace. Nil costs nothing.
	Span *obs.Span
	// Filter enables the §4 edge filtering. It requires SpanBFS: the
	// correctness lemmas (Lemma 1/2, Theorem 2) hold only for BFS trees.
	Filter bool
	// ParallelTour selects the computed (level-sweep) Euler tour of Cong &
	// Bader's technique paper [6] instead of the sequential DFS emission;
	// both produce identical sequences. Only meaningful for rooted
	// spanning trees (ignored with SpanSV).
	ParallelTour bool
}

// Custom runs the TV pipeline described by cfg with p workers.
//
// Custom is a fault boundary: a panic anywhere in the pipeline — in a phase
// running on this goroutine or re-raised by the par runtime after containing
// a worker panic — is recovered and returned as a *par.PanicError instead of
// propagating. Callers therefore see engine bugs as errors, never as
// crashes.
func Custom(p int, g *graph.EdgeList, cfg Config) (res *Result, err error) {
	defer func() {
		if v := recover(); v != nil {
			res, err = nil, par.AsPanicError(-1, v)
		}
	}()
	if cfg.Filter && cfg.SpanningTree != SpanBFS {
		return nil, fmt.Errorf("core: edge filtering requires a BFS spanning tree (paper Lemma 1)")
	}
	p = par.Procs(p)
	faults.Inject(cfg.Cancel, siteEntry, 0, int(cfg.SpanningTree))
	sw := NewStopwatch(cfg.Span)
	// Step 1 (+3 for rooted variants): spanning tree.
	var (
		td         *treecomp.TreeData
		isTree     []bool
		rooted     *spantree.RootedForest
		linkedTour *eulertour.Tour
		seq        *eulertour.ArcSeq
		mGlobal    = len(g.Edges)
	)
	switch cfg.SpanningTree {
	case SpanSV:
		f := spantree.SVC(cfg.Cancel, p, g.N, g.Edges)
		if err := cfg.Cancel.Err(); err != nil {
			return nil, err
		}
		roots := rootsFromLabels(f.Labels)
		isTree = f.Mark(p, mGlobal)
		sw.Lap(PhaseSpanningTree)
		linkedTour, err = eulertour.FromForest(p, g.N, g.Edges, f.TreeEdges, roots)
		if err != nil {
			return nil, err
		}
		sw.Lap(PhaseEulerTour)
	case SpanWorkStealing, SpanBFS:
		c := graph.ToCSR(p, g)
		if cfg.SpanningTree == SpanWorkStealing {
			rooted = spantree.WorkStealingC(cfg.Cancel, p, c)
		} else {
			rooted = spantree.BFSC(cfg.Cancel, p, c)
		}
		if err := cfg.Cancel.Err(); err != nil {
			return nil, err
		}
		isTree = rooted.TreeEdgeMark(p, mGlobal)
		sw.Lap(PhaseSpanningTree)
	default:
		return nil, fmt.Errorf("core: unknown spanning tree kind %d", cfg.SpanningTree)
	}
	faults.Inject(cfg.Cancel, sitePhase, 0, 1)
	if err := cfg.Cancel.Err(); err != nil {
		return nil, err
	}

	// Optional filtering (between tree construction and the tour, as in
	// Alg. 2).
	edges := g.Edges
	edgeIsTree := isTree
	var origID []int32 // reduced -> global edge ids
	var keep []bool
	if cfg.Filter {
		edges, edgeIsTree, origID, keep = filterNonEssential(cfg.Cancel, p, g, rooted, isTree)
		if err := cfg.Cancel.Err(); err != nil {
			return nil, err
		}
		sw.Lap(PhaseFiltering)
	}

	// Step 2 for the rooted variants: tour in traversal order.
	if rooted != nil {
		if cfg.ParallelTour {
			seq = eulertour.DFSOrderParallel(p, g.Edges, rooted)
		} else {
			seq = eulertour.DFSOrder(p, g.Edges, rooted)
		}
		sw.Lap(PhaseEulerTour)
	}
	// Step 3: tree computations. For the SV path this is where the list
	// ranking runs, which is the paper's "root" cost.
	if linkedTour != nil {
		seq, err = eulertour.Sequence(p, linkedTour, cfg.Ranker == RankHelmanJaja)
		if err != nil {
			return nil, err
		}
	}
	td, err = treecomp.Compute(p, seq)
	if err != nil {
		return nil, err
	}
	faults.Inject(cfg.Cancel, sitePhase, 0, 2)
	if err := cfg.Cancel.Err(); err != nil {
		return nil, err
	}
	sw.Lap(PhaseRoot)

	// Step 4: low/high.
	var low, high []int32
	if cfg.LowHigh == LowHighBottomUp {
		low, high = treecomp.LowHighBottomUp(p, td, edges, edgeIsTree)
	} else {
		low, high = treecomp.LowHigh(p, td, edges, edgeIsTree)
	}
	faults.Inject(cfg.Cancel, sitePhase, 0, 3)
	if err := cfg.Cancel.Err(); err != nil {
		return nil, err
	}
	sw.Lap(PhaseLowHigh)

	// Steps 5–6 plus the filtered-edge relabeling.
	edgeComp := make([]int32, mGlobal)
	tvTail(cfg.Cancel, p, sw, edges, edgeIsTree, td, low, high, edgeComp, origID)
	faults.Inject(cfg.Cancel, sitePhase, 0, 4)
	if err := cfg.Cancel.Err(); err != nil {
		return nil, err
	}
	if cfg.Filter {
		par.For(p, mGlobal, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				if keep[i] {
					continue
				}
				e := g.Edges[i]
				u := e.U
				if td.Pre[e.V] > td.Pre[u] {
					u = e.V
				}
				edgeComp[i] = edgeComp[rooted.ParentEdge[u]]
			}
		})
		sw.Lap(PhaseFiltering)
	}
	return FinishResult(edgeComp, sw), nil
}

// filterNonEssential implements steps 1–2 of Alg. 2 given the BFS tree:
// compute a spanning forest F of G−T and keep only T ∪ F. It returns the
// reduced edge list, its tree mask, the reduced→global id map, and the
// global keep mask.
func filterNonEssential(c *par.Canceler, p int, g *graph.EdgeList, t *spantree.RootedForest, inT []bool) (
	reduced []graph.Edge, reducedIsTree []bool, origID []int32, keep []bool) {
	m := len(g.Edges)
	nontreeIDs := prefix.Compact(p, m, func(i int) bool { return !inT[i] })
	nontreeEdges := make([]graph.Edge, len(nontreeIDs))
	par.For(p, len(nontreeIDs), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			nontreeEdges[i] = g.Edges[nontreeIDs[i]]
		}
	})
	ff := spantree.SVC(c, p, g.N, nontreeEdges)
	if c.Err() != nil {
		return nil, nil, nil, make([]bool, m)
	}
	keep = make([]bool, m)
	par.For(p, m, func(lo, hi int) {
		copy(keep[lo:hi], inT[lo:hi])
	})
	par.For(p, len(ff.TreeEdges), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			keep[nontreeIDs[ff.TreeEdges[i]]] = true
		}
	})
	origID = prefix.Compact(p, m, func(i int) bool { return keep[i] })
	reduced = make([]graph.Edge, len(origID))
	reducedIsTree = make([]bool, len(origID))
	par.For(p, len(origID), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			reduced[i] = g.Edges[origID[i]]
			reducedIsTree[i] = inT[origID[i]]
		}
	})
	return reduced, reducedIsTree, origID, keep
}
