package core

import (
	"math/rand"
	"testing"

	"bicc/internal/conncomp"
	"bicc/internal/gen"
	"bicc/internal/graph"
)

// fixtures returns graphs with known biconnectivity structure.
func fixtures() map[string]struct {
	g        *graph.EdgeList
	numComp  int // -1 means unknown (cross-validate only)
	numCuts  int
	numBrdgs int
} {
	return map[string]struct {
		g        *graph.EdgeList
		numComp  int
		numCuts  int
		numBrdgs int
	}{
		"single-edge": {gen.Chain(2), 1, 0, 1},
		"triangle":    {gen.Cycle(3), 1, 0, 0},
		"chain":       {gen.Chain(10), 9, 8, 9},
		"cycle":       {gen.Cycle(12), 1, 0, 0},
		"star":        {gen.Star(8), 7, 1, 7},
		"mesh":        {gen.Mesh(5, 6), 1, 0, 0},
		"binarytree":  {gen.BinaryTree(15), 14, 7, 14},
		"blockchain":  {gen.BlockChain(5, 4), 5, 4, 0},
		"bowtie": {&graph.EdgeList{N: 5, Edges: []graph.Edge{
			{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 0},
			{U: 2, V: 3}, {U: 3, V: 4}, {U: 4, V: 2},
		}}, 2, 1, 0},
		"dense":        {gen.Dense(25, 0.7, 3), 1, 0, 0},
		"disconnected": {gen.Disconnected(gen.Cycle(4), gen.Chain(3), gen.Star(4)), -1, -1, -1},
		"isolated":     {&graph.EdgeList{N: 4}, 0, 0, 0},
		"empty":        {&graph.EdgeList{N: 0}, 0, 0, 0},
		"random":       {gen.RandomConnected(200, 600, 5), -1, -1, -1},
		"sparse":       {gen.Random(150, 160, 6), -1, -1, -1},
	}
}

type algo struct {
	name string
	run  func(p int, g *graph.EdgeList) (*Result, error)
}

func algorithms() []algo {
	return []algo{
		{"tv-smp", TVSMP},
		{"tv-smp-wyllie", TVSMPWyllie},
		{"tv-opt", TVOpt},
		{"tv-filter", TVFilter},
	}
}

func TestKnownStructures(t *testing.T) {
	for name, fx := range fixtures() {
		seq := Sequential(fx.g)
		if fx.numComp >= 0 && seq.NumComp != fx.numComp {
			t.Errorf("%s: sequential NumComp=%d, want %d", name, seq.NumComp, fx.numComp)
		}
		if fx.numCuts >= 0 {
			if cuts := Articulation(fx.g, seq.EdgeComp); len(cuts) != fx.numCuts {
				t.Errorf("%s: %d articulation points, want %d (%v)", name, len(cuts), fx.numCuts, cuts)
			}
		}
		if fx.numBrdgs >= 0 {
			if br := Bridges(fx.g, seq.EdgeComp, seq.NumComp); len(br) != fx.numBrdgs {
				t.Errorf("%s: %d bridges, want %d", name, len(br), fx.numBrdgs)
			}
		}
	}
}

func TestParallelMatchesSequential(t *testing.T) {
	for name, fx := range fixtures() {
		want := Sequential(fx.g)
		for _, a := range algorithms() {
			for _, p := range []int{1, 4} {
				got, err := a.run(p, fx.g)
				if err != nil {
					t.Fatalf("%s/%s p=%d: %v", name, a.name, p, err)
				}
				if got.NumComp != want.NumComp {
					t.Errorf("%s/%s p=%d: NumComp=%d, want %d", name, a.name, p, got.NumComp, want.NumComp)
					continue
				}
				if len(fx.g.Edges) > 0 && !conncomp.SamePartition(got.EdgeComp, want.EdgeComp) {
					t.Errorf("%s/%s p=%d: edge partition differs from sequential", name, a.name, p)
				}
			}
		}
	}
}

func TestRandomizedCrossValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 40; trial++ {
		n := 2 + rng.Intn(100)
		maxM := n * (n - 1) / 2
		m := rng.Intn(maxM + 1)
		g := gen.Random(n, m, int64(trial*13+1))
		want := Sequential(g)
		for _, a := range algorithms() {
			got, err := a.run(2, g)
			if err != nil {
				t.Fatalf("trial %d %s: %v", trial, a.name, err)
			}
			if got.NumComp != want.NumComp || (m > 0 && !conncomp.SamePartition(got.EdgeComp, want.EdgeComp)) {
				t.Fatalf("trial %d %s: partition mismatch (n=%d m=%d): got %d comps, want %d",
					trial, a.name, n, m, got.NumComp, want.NumComp)
			}
		}
	}
}

// articulationOracle counts connected components after removing v.
func articulationOracle(g *graph.EdgeList, v int32) bool {
	// Count components among remaining vertices.
	sub := &graph.EdgeList{N: g.N}
	for _, e := range g.Edges {
		if e.U != v && e.V != v {
			sub.Edges = append(sub.Edges, e)
		}
	}
	before := conncomp.Count(conncomp.UnionFind(g.N, g.Edges))
	afterLabels := conncomp.UnionFind(sub.N, sub.Edges)
	// Discount v itself (always its own component after removal) and any
	// vertices that were already isolated.
	after := 0
	seen := map[int32]bool{}
	for u := int32(0); u < g.N; u++ {
		if u == v {
			continue
		}
		if !seen[afterLabels[u]] {
			seen[afterLabels[u]] = true
			after++
		}
	}
	// v was in some component; removing it leaves the rest of that
	// component plus all others. v is a cut vertex iff component count over
	// the remaining vertices exceeds before-1 (v's component must not have
	// been a singleton) ... simpler: compare with before adjusted for v
	// being isolated or not.
	deg := 0
	for _, e := range g.Edges {
		if e.U == v || e.V == v {
			deg++
		}
	}
	if deg == 0 {
		return false
	}
	return after > before
}

func TestArticulationAgainstOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	for trial := 0; trial < 15; trial++ {
		n := 3 + rng.Intn(30)
		maxM := n * (n - 1) / 2
		m := rng.Intn(maxM + 1)
		g := gen.Random(n, m, int64(trial*7+3))
		res := Sequential(g)
		isCut := map[int32]bool{}
		for _, v := range Articulation(g, res.EdgeComp) {
			isCut[v] = true
		}
		for v := int32(0); v < g.N; v++ {
			if want := articulationOracle(g, v); want != isCut[v] {
				t.Fatalf("trial %d (n=%d m=%d): vertex %d cut=%v, oracle=%v",
					trial, n, m, v, isCut[v], want)
			}
		}
	}
}

// bridgeOracle: edge i is a bridge iff removing it disconnects its endpoints.
func bridgeOracle(g *graph.EdgeList, i int) bool {
	sub := &graph.EdgeList{N: g.N}
	for j, e := range g.Edges {
		if j != i {
			sub.Edges = append(sub.Edges, e)
		}
	}
	labels := conncomp.UnionFind(sub.N, sub.Edges)
	return labels[g.Edges[i].U] != labels[g.Edges[i].V]
}

func TestBridgesAgainstOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(66))
	for trial := 0; trial < 15; trial++ {
		n := 3 + rng.Intn(25)
		m := rng.Intn(2*n + 1)
		if max := n * (n - 1) / 2; m > max {
			m = max
		}
		g := gen.Random(n, m, int64(trial*11+5))
		res := Sequential(g)
		isBridge := map[int32]bool{}
		for _, b := range Bridges(g, res.EdgeComp, res.NumComp) {
			isBridge[b] = true
		}
		for i := range g.Edges {
			if want := bridgeOracle(g, i); want != isBridge[int32(i)] {
				t.Fatalf("trial %d: edge %d bridge=%v, oracle=%v", trial, i, isBridge[int32(i)], want)
			}
		}
	}
}

func TestEveryEdgeInExactlyOneComponent(t *testing.T) {
	g := gen.RandomConnected(150, 450, 12)
	for _, a := range algorithms() {
		res, err := a.run(2, g)
		if err != nil {
			t.Fatal(err)
		}
		for i, c := range res.EdgeComp {
			if c < 0 || int(c) >= res.NumComp {
				t.Fatalf("%s: edge %d has component %d outside [0,%d)", a.name, i, c, res.NumComp)
			}
		}
	}
}

func TestPhasesRecorded(t *testing.T) {
	g := gen.RandomConnected(100, 300, 9)
	res, err := TVFilter(2, g)
	if err != nil {
		t.Fatal(err)
	}
	wantPhases := map[string]bool{
		PhaseSpanningTree: false, PhaseFiltering: false, PhaseEulerTour: false,
		PhaseRoot: false, PhaseLowHigh: false, PhaseLabelEdge: false, PhaseConnComp: false,
	}
	for _, ph := range res.Phases {
		if _, ok := wantPhases[ph.Name]; ok {
			wantPhases[ph.Name] = true
		}
		if ph.Duration < 0 {
			t.Errorf("phase %s has negative duration", ph.Name)
		}
	}
	for name, seen := range wantPhases {
		if !seen {
			t.Errorf("TVFilter did not record phase %q", name)
		}
	}
	if res.Total() <= 0 {
		t.Error("total duration not positive")
	}
	if res.PhaseDuration(PhaseFiltering) <= 0 {
		t.Error("filtering phase has no duration")
	}
}

func TestFilteredEdgeCount(t *testing.T) {
	if got := FilteredEdgeCount(100, 500); got != 500-198 {
		t.Errorf("FilteredEdgeCount=%d, want %d", got, 500-198)
	}
	if got := FilteredEdgeCount(100, 50); got != 0 {
		t.Errorf("FilteredEdgeCount sparse=%d, want 0", got)
	}
}

func TestSequentialDeepChain(t *testing.T) {
	// The iterative DFS must survive a 200k-deep recursion-equivalent.
	g := gen.Chain(200_000)
	res := Sequential(g)
	if res.NumComp != 199_999 {
		t.Errorf("deep chain NumComp=%d, want 199999", res.NumComp)
	}
}

func TestDenseWooSahniStyle(t *testing.T) {
	// 70% and 90% of complete graphs (the Woo–Sahni regime) are biconnected
	// with overwhelming probability at this size.
	for _, frac := range []float64{0.7, 0.9} {
		g := gen.Dense(60, frac, 8)
		want := Sequential(g)
		got, err := TVFilter(2, g)
		if err != nil {
			t.Fatal(err)
		}
		if got.NumComp != want.NumComp {
			t.Errorf("frac=%.1f: NumComp=%d, want %d", frac, got.NumComp, want.NumComp)
		}
		if want.NumComp != 1 {
			t.Errorf("frac=%.1f: dense graph has %d blocks, expected 1", frac, want.NumComp)
		}
	}
}
