package bicc

import (
	"testing"

	"bicc/internal/conncomp"
)

// FuzzBiconnectedComponents decodes raw bytes into a graph (2 bytes per
// edge over up to 64 vertices) and cross-checks all four algorithms plus
// the independent verifier. Run with `go test -fuzz FuzzBiconnected` for an
// open-ended hunt; the seed corpus below runs in normal test mode.
func FuzzBiconnectedComponents(f *testing.F) {
	f.Add([]byte{0x01, 0x10, 0x21, 0x02})             // triangle-ish
	f.Add([]byte{})                                   // empty
	f.Add([]byte{0x01, 0x12, 0x23, 0x34, 0x45, 0x50}) // cycle
	f.Add([]byte{0x01, 0x01, 0x11})                   // dup + self loop
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 512 {
			data = data[:512]
		}
		const n = 64
		var edges []Edge
		for i := 0; i+1 < len(data); i += 2 {
			u := int32(data[i] % n)
			v := int32(data[i+1] % n)
			edges = append(edges, Edge{U: u, V: v})
		}
		g, _, _, err := NewGraphNormalized(n, edges)
		if err != nil {
			t.Fatalf("normalization rejected in-range input: %v", err)
		}
		want, err := BiconnectedComponents(g, &Options{Algorithm: Sequential})
		if err != nil {
			t.Fatal(err)
		}
		if err := Verify(g, want); err != nil {
			t.Fatalf("sequential result fails verification: %v", err)
		}
		for _, a := range []Algorithm{TVSMP, TVOpt, TVFilter} {
			got, err := BiconnectedComponents(g, &Options{Algorithm: a, Procs: 2})
			if err != nil {
				t.Fatalf("%v: %v", a, err)
			}
			if got.NumComponents != want.NumComponents {
				t.Fatalf("%v: NumComponents=%d, want %d", a, got.NumComponents, want.NumComponents)
			}
			if g.NumEdges() > 0 && !conncomp.SamePartition(got.EdgeComponent, want.EdgeComponent) {
				t.Fatalf("%v: partition differs from sequential", a)
			}
		}
	})
}
