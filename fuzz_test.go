package bicc

import (
	"testing"

	"bicc/internal/conncomp"
)

// FuzzBiconnectedComponents decodes raw bytes into a graph (2 bytes per
// edge over up to 64 vertices) and cross-checks all five algorithms plus
// the independent verifier. Run with `go test -fuzz FuzzBiconnected` for an
// open-ended hunt; the seed corpus below runs in normal test mode.
func FuzzBiconnectedComponents(f *testing.F) {
	f.Add([]byte{0x01, 0x10, 0x21, 0x02})             // triangle-ish
	f.Add([]byte{})                                   // empty
	f.Add([]byte{0x01, 0x12, 0x23, 0x34, 0x45, 0x50}) // cycle
	f.Add([]byte{0x01, 0x01, 0x11})                   // dup + self loop
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 512 {
			data = data[:512]
		}
		const n = 64
		var edges []Edge
		for i := 0; i+1 < len(data); i += 2 {
			u := int32(data[i] % n)
			v := int32(data[i+1] % n)
			edges = append(edges, Edge{U: u, V: v})
		}
		g, _, _, err := NewGraphNormalized(n, edges)
		if err != nil {
			t.Fatalf("normalization rejected in-range input: %v", err)
		}
		want, err := BiconnectedComponents(g, &Options{Algorithm: Sequential})
		if err != nil {
			t.Fatal(err)
		}
		if err := Verify(g, want); err != nil {
			t.Fatalf("sequential result fails verification: %v", err)
		}
		for _, a := range []Algorithm{TVSMP, TVOpt, TVFilter, FastBCC} {
			got, err := BiconnectedComponents(g, &Options{Algorithm: a, Procs: 2})
			if err != nil {
				t.Fatalf("%v: %v", a, err)
			}
			if got.NumComponents != want.NumComponents {
				t.Fatalf("%v: NumComponents=%d, want %d", a, got.NumComponents, want.NumComponents)
			}
			if g.NumEdges() > 0 && !conncomp.SamePartition(got.EdgeComponent, want.EdgeComponent) {
				t.Fatalf("%v: partition differs from sequential", a)
			}
		}
	})
}

// FuzzFastBCC holds the skeleton engine to a stricter bar than the shared
// fuzzer above: byte-identical EdgeComponent against the sequential oracle,
// not just an equivalent partition — the canonical-labeling contract the
// incremental layer depends on. Vertices are drawn from a 32-id space so
// random inputs are frequently disconnected; the seed corpus adds the
// regimes where skeleton/fence classification is most delicate (trees where
// every edge is a bridge, bridges joining dense blocks, isolated vertices).
func FuzzFastBCC(f *testing.F) {
	f.Add([]byte{})                                         // empty graph
	f.Add([]byte{0x01, 0x12, 0x23, 0x34})                   // path: every edge a bridge
	f.Add([]byte{0x01, 0x12, 0x20, 0x23, 0x34, 0x45, 0x53}) // two triangles joined by a bridge
	f.Add([]byte{0x01, 0x10, 0x45, 0x56, 0x64})             // disconnected: edge + triangle
	f.Add([]byte{0x01, 0x02, 0x03, 0x04, 0x05})             // star: bridge-only
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 512 {
			data = data[:512]
		}
		const n = 32
		var edges []Edge
		for i := 0; i+1 < len(data); i += 2 {
			edges = append(edges, Edge{U: int32(data[i] % n), V: int32(data[i+1] % n)})
		}
		g, _, _, err := NewGraphNormalized(n, edges)
		if err != nil {
			t.Fatalf("normalization rejected in-range input: %v", err)
		}
		want, err := BiconnectedComponents(g, &Options{Algorithm: Sequential})
		if err != nil {
			t.Fatal(err)
		}
		got, err := BiconnectedComponents(g, &Options{Algorithm: FastBCC, Procs: 3})
		if err != nil {
			t.Fatalf("fast-bcc: %v", err)
		}
		if got.NumComponents != want.NumComponents {
			t.Fatalf("fast-bcc: NumComponents=%d, want %d", got.NumComponents, want.NumComponents)
		}
		for i := range want.EdgeComponent {
			if got.EdgeComponent[i] != want.EdgeComponent[i] {
				t.Fatalf("fast-bcc: edge %d labeled %d, sequential %d",
					i, got.EdgeComponent[i], want.EdgeComponent[i])
			}
		}
	})
}
