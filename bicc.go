// Package bicc finds the biconnected components of undirected graphs using
// the parallel algorithms from Cong & Bader, "An Experimental Study of
// Parallel Biconnected Components Algorithms on Symmetric Multiprocessors
// (SMPs)" (IPPS 2005): the Tarjan–Vishkin SMP emulation (TV-SMP), its
// optimized adaptation (TV-opt), the paper's new edge-filtering algorithm
// (TV-filter), and the sequential Hopcroft–Tarjan baseline — plus the
// skeleton-based FAST-BCC engine (fast-bcc) from the follow-on literature,
// which drops the Euler-tour/list-ranking stack entirely.
//
// A biconnected component (block) is a maximal subgraph that remains
// connected after removing any single vertex. Every edge of a simple graph
// belongs to exactly one block; a bridge forms a singleton block.
// Articulation points (cut vertices) and bridges fall out of the block
// decomposition for free.
//
// Quickstart:
//
//	g, err := bicc.NewGraph(4, []bicc.Edge{{0, 1}, {1, 2}, {2, 0}, {2, 3}})
//	res, err := bicc.BiconnectedComponents(g, nil)
//	fmt.Println(res.NumComponents)          // 2: the triangle and the bridge
//	fmt.Println(res.ArticulationPoints())   // [2]
//	fmt.Println(res.Bridges())              // [3] (edge index of {2,3})
//
// Unlike the paper's codes, this implementation accepts disconnected
// graphs: all algorithms operate on rooted spanning forests.
package bicc

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"bicc/internal/core"
	"bicc/internal/fastbcc"
	"bicc/internal/graph"
	"bicc/internal/obs"
	"bicc/internal/par"
	"bicc/internal/plan"
)

// phaseSeconds is the live per-phase breakdown of every engine run — the
// paper's Fig. 4 as a scrapeable histogram family. Observation is gated by
// obs.Enabled() so benchmark runs stay unperturbed.
var phaseSeconds = obs.Default().HistogramVec("bicc_phase_seconds",
	"Engine execution time per TV pipeline phase (the paper's Fig. 4 breakdown).",
	"algorithm", "phase")

// Edge is one undirected edge between vertices U and V.
type Edge = graph.Edge

// Graph is an undirected simple graph on vertices [0, N).
type Graph struct {
	el *graph.EdgeList
}

// NewGraph builds a graph from n vertices and an edge list. It rejects
// out-of-range endpoints, self loops, and duplicate edges; use
// NewGraphNormalized to clean such inputs instead.
func NewGraph(n int, edges []Edge) (*Graph, error) {
	if n < 0 {
		return nil, fmt.Errorf("bicc: negative vertex count %d", n)
	}
	el := &graph.EdgeList{N: int32(n), Edges: append([]Edge(nil), edges...)}
	if err := el.Validate(); err != nil {
		return nil, err
	}
	seen := make(map[uint64]struct{}, len(edges))
	for i, e := range el.Edges {
		k := graph.CanonKey(e.U, e.V)
		if _, dup := seen[k]; dup {
			return nil, fmt.Errorf("bicc: duplicate edge %d (%d,%d)", i, e.U, e.V)
		}
		seen[k] = struct{}{}
	}
	return &Graph{el: el}, nil
}

// NewGraphNormalized builds a graph after dropping self loops and
// deduplicating parallel edges. It reports how many of each were removed.
// Edge indices in results refer to the normalized edge order, retrievable
// via Edges.
func NewGraphNormalized(n int, edges []Edge) (g *Graph, loops, dups int, err error) {
	if n < 0 {
		return nil, 0, 0, fmt.Errorf("bicc: negative vertex count %d", n)
	}
	// Copy before wrapping: the EdgeList below must never alias the caller's
	// slice, or normalization could reorder/truncate the caller's data.
	el := &graph.EdgeList{N: int32(n), Edges: append([]Edge(nil), edges...)}
	for i, e := range el.Edges {
		if e.U < 0 || e.U >= el.N || e.V < 0 || e.V >= el.N {
			return nil, 0, 0, fmt.Errorf("bicc: edge %d (%d,%d) out of range [0,%d)", i, e.U, e.V, n)
		}
	}
	norm, loops, dups := el.Normalize()
	return &Graph{el: norm}, loops, dups, nil
}

// NumVertices returns the number of vertices.
func (g *Graph) NumVertices() int { return int(g.el.N) }

// NumEdges returns the number of edges.
func (g *Graph) NumEdges() int { return len(g.el.Edges) }

// Edges returns the graph's edges; index i in results refers to this slice.
// The caller must not modify the returned slice.
func (g *Graph) Edges() []Edge { return g.el.Edges }

// Algorithm selects the biconnected components implementation.
type Algorithm int

const (
	// Auto picks TVFilter when m >= 4n and TVOpt otherwise — the fallback
	// rule from the end of the paper's §4 — and Sequential when only one
	// processor is requested.
	Auto Algorithm = iota
	// Sequential is Tarjan's linear-time DFS algorithm.
	Sequential
	// TVSMP is the direct SMP emulation of Tarjan–Vishkin (§3.1), kept as
	// the paper's baseline: sort-based Euler tour, list-ranking tree
	// computations.
	TVSMP
	// TVOpt is the optimized adaptation (§3.2): merged spanning-tree/root
	// via work-stealing traversal, DFS-ordered Euler tour, prefix-sum tree
	// computations.
	TVOpt
	// TVFilter is the paper's new algorithm (§4): discard nontree edges
	// that cannot affect biconnectivity, run TV on at most 2(n-1) edges,
	// then label the filtered edges by condition 1.
	TVFilter
	// FastBCC is the skeleton-based algorithm of Dong, Wang, Gu & Sun
	// ("Provably Fast and Space-Efficient Parallel Biconnectivity"): a BFS
	// forest, preorder/low/high labels from O(n) level sweeps instead of an
	// Euler tour, and connected components over the fence-free skeleton
	// graph. Same canonical output as every other engine, without the
	// tour/list-ranking constant factor.
	FastBCC
)

// algorithms lists every valid preset, in presentation order.
var algorithms = []Algorithm{Auto, Sequential, TVSMP, TVOpt, TVFilter, FastBCC}

// String returns the algorithm's name as used in the paper.
func (a Algorithm) String() string {
	switch a {
	case Auto:
		return "auto"
	case Sequential:
		return "sequential"
	case TVSMP:
		return "tv-smp"
	case TVOpt:
		return "tv-opt"
	case TVFilter:
		return "tv-filter"
	case FastBCC:
		return "fast-bcc"
	}
	return fmt.Sprintf("Algorithm(%d)", int(a))
}

// ParseAlgorithm is the inverse of Algorithm.String: it maps a preset name
// to its Algorithm. Unknown names are rejected with an error listing the
// valid presets — callers must never fall through to a silent zero-value
// (Auto) engine on a typo.
func ParseAlgorithm(s string) (Algorithm, error) {
	for _, a := range algorithms {
		if s == a.String() {
			return a, nil
		}
	}
	names := make([]string, len(algorithms))
	for i, a := range algorithms {
		names[i] = a.String()
	}
	return 0, fmt.Errorf("bicc: unknown algorithm %q (valid: %s)", s, strings.Join(names, ", "))
}

// FallbackPolicy selects how BiconnectedComponentsCtx reacts when a
// parallel engine faults (panics, fails, or exceeds the per-attempt
// deadline).
type FallbackPolicy int

const (
	// FallbackNone returns engine faults to the caller unchanged — the
	// library's historical behavior. Panics are still contained and
	// surfaced as *par.PanicError values, never as crashes.
	FallbackNone FallbackPolicy = iota
	// FallbackSequential retries the faulted parallel engine once, and if
	// the retry faults too, degrades to the sequential Hopcroft–Tarjan
	// engine under the caller's context. The returned Result has Degraded
	// set and DegradedCause recording the parallel failure. Cancellation of
	// the caller's context is never retried or degraded: the caller is
	// gone, so its error is returned immediately.
	FallbackSequential
)

// Options configures a biconnected components run. The zero value (and nil)
// mean: Auto algorithm, GOMAXPROCS workers, no fallback.
type Options struct {
	// Algorithm selects the implementation; Auto applies the paper's
	// density rule.
	Algorithm Algorithm
	// Procs is the number of workers; <= 0 means GOMAXPROCS.
	Procs int
	// Context, when non-nil, attaches a deadline/cancellation to the run:
	// all four algorithms poll it cooperatively and return its error
	// (context.Canceled or context.DeadlineExceeded) promptly once it is
	// done. BiconnectedComponentsCtx overrides this field.
	Context context.Context
	// Fallback is the fault-handling policy for parallel engines; see
	// FallbackPolicy.
	Fallback FallbackPolicy
	// AttemptTimeout, when > 0 and Fallback is FallbackSequential, bounds
	// each parallel attempt: an attempt that runs longer is cooperatively
	// canceled with ErrAttemptTimeout and handled under the fallback
	// policy. The sequential fallback itself is bounded only by the
	// caller's context.
	AttemptTimeout time.Duration
}

// PhaseTiming is one timed step of the algorithm (the Fig. 4 breakdown).
type PhaseTiming struct {
	Name     string
	Duration time.Duration
}

// Result is a biconnected components decomposition.
type Result struct {
	// NumComponents is the number of blocks.
	NumComponents int
	// EdgeComponent maps each edge index to its dense block id in
	// [0, NumComponents).
	EdgeComponent []int32
	// Algorithm is the implementation that actually ran (Auto resolved;
	// Sequential when the run degraded to the fallback engine).
	Algorithm Algorithm
	// Phases is the per-step timing breakdown in execution order.
	Phases []PhaseTiming
	// Degraded reports that the requested parallel engine faulted and this
	// result was produced by the sequential fallback (still a fully correct
	// decomposition, just without parallel speedup).
	Degraded bool
	// DegradedCause is the parallel engine's failure that triggered the
	// fallback; nil unless Degraded.
	DegradedCause error

	g *graph.EdgeList
}

// ErrNilGraph is returned when a nil graph is supplied.
var ErrNilGraph = errors.New("bicc: nil graph")

// ErrAttemptTimeout is the cancellation cause installed when a parallel
// attempt outlives Options.AttemptTimeout. It is distinct from
// context.DeadlineExceeded so the supervisor can tell "this attempt was too
// slow" (retry, then degrade) from "the caller's deadline passed" (give up).
var ErrAttemptTimeout = errors.New("bicc: parallel attempt exceeded AttemptTimeout")

// installedPlanner, when set, supersedes the static §4 rule for Auto runs:
// BiconnectedComponentsCtx plans engine and parallelism per graph and feeds
// clean-run latencies back into its online model.
var installedPlanner atomic.Pointer[plan.Planner]

// SetPlanner installs (or, with nil, removes) the adaptive query planner for
// this process's library-level Auto runs. The service layer keeps its own
// per-server planner and resolves Auto before calling into the library, so
// it is unaffected by this global.
func SetPlanner(p *plan.Planner) { installedPlanner.Store(p) }

// InstalledPlanner returns the planner installed by SetPlanner, or nil.
func InstalledPlanner() *plan.Planner { return installedPlanner.Load() }

// PlanFeatures returns g's planner feature vector, computed with p analysis
// workers. Service and tooling layers use it to plan without reaching into
// internal packages.
func PlanFeatures(p int, g *Graph) plan.Features {
	return plan.Extract(par.Procs(p), g.el)
}

// FeaturesFor returns pl's cached feature vector for g, extracting it on
// first sight. The bridge exists because plan.Planner operates on the
// internal edge-list type the public Graph wraps.
func FeaturesFor(pl *plan.Planner, g *Graph) plan.Features {
	return pl.FeaturesOf(g.el)
}

// PlanAlgorithm resolves an Auto request to a concrete (engine, procs) pair.
// With a planner installed it asks the planner — procs > 0 pins the
// parallelism degree and only the engine is chosen; procs <= 0 lets the
// planner pick both. Without one it applies ResolveAlgorithm's static rule
// at par.Procs(procs) workers. Non-Auto algorithms pass through unchanged.
func PlanAlgorithm(g *Graph, algo Algorithm, procs int) (Algorithm, int) {
	p := par.Procs(procs)
	if algo != Auto {
		return algo, p
	}
	if pl := installedPlanner.Load(); pl != nil {
		pinned := 0
		if procs > 0 {
			pinned = p
		}
		d := pl.Decide(pl.FeaturesOf(g.el), pinned, false)
		if a, err := ParseAlgorithm(d.Engine); err == nil && a != Auto {
			return a, d.Procs
		}
	}
	return ResolveAlgorithm(g, algo, p), p
}

// ResolveAlgorithm reports the engine Auto selects for g at the given worker
// count under the static rule (the paper's density rule: Sequential for one
// worker, TVFilter when m >= 4n, TVOpt otherwise). Non-Auto algorithms
// resolve to themselves, and procs <= 0 means GOMAXPROCS, matching
// Options.Procs. Callers that serve a decomposition computed elsewhere
// (result reconstruction, incremental maintenance) use this to label it
// exactly as a static Auto run would; live Auto runs go through
// PlanAlgorithm, which defers to the installed adaptive planner when there
// is one.
func ResolveAlgorithm(g *Graph, algo Algorithm, procs int) Algorithm {
	if algo != Auto {
		return algo
	}
	p := par.Procs(procs)
	switch {
	case p == 1:
		return Sequential
	case len(g.el.Edges) >= 4*int(g.el.N):
		return TVFilter
	default:
		return TVOpt
	}
}

// BiconnectedComponents computes the block decomposition of g. When
// opt.Context is non-nil the run honors its deadline/cancellation; see
// BiconnectedComponentsCtx.
func BiconnectedComponents(g *Graph, opt *Options) (*Result, error) {
	var ctx context.Context
	if opt != nil {
		ctx = opt.Context
	}
	return BiconnectedComponentsCtx(ctx, g, opt)
}

// BiconnectedComponentsCtx computes the block decomposition of g under ctx:
// the algorithms poll the context cooperatively (between pipeline phases and
// inside the engines' parallel loops) and return ctx's error promptly once
// it is canceled or its deadline passes. A nil ctx means
// context.Background(). The ctx argument takes precedence over opt.Context.
//
// The call is a fault boundary: engine panics are contained by the runtime
// and surface as *par.PanicError values, never as crashes. With
// Options.Fallback set to FallbackSequential, a parallel engine that
// panics, errors, or exceeds Options.AttemptTimeout is retried once and
// then replaced by the sequential engine; see FallbackPolicy.
func BiconnectedComponentsCtx(ctx context.Context, g *Graph, opt *Options) (*Result, error) {
	if g == nil {
		return nil, ErrNilGraph
	}
	var o Options
	if opt != nil {
		o = *opt
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	algo, p := PlanAlgorithm(g, o.Algorithm, o.Procs)
	switch algo {
	case Sequential, TVSMP, TVOpt, TVFilter, FastBCC:
	default:
		return nil, fmt.Errorf("bicc: unknown algorithm %v", o.Algorithm)
	}
	// Library-planned Auto runs report their clean latencies back to the
	// installed planner's online model. (The service layer plans and
	// observes with its own planner before calling in here, so the global
	// stays nil in that process and nothing double-counts.)
	planned := o.Algorithm == Auto
	start := time.Now()

	if o.Fallback != FallbackSequential || algo == Sequential {
		res, err := runAttempt(ctx, g.el, algo, p, 0, 0)
		if err != nil {
			return nil, err
		}
		observePlan(planned, g.el, algo, p, time.Since(start))
		return newResult(res, algo, g.el), nil
	}

	// Supervised path: one retry for transient faults (a lost race, an
	// injected fault that won't recur), then degrade to the engine that
	// cannot share the parallel runtime's failure modes.
	var lastErr error
	for attempt := 0; attempt < 2; attempt++ {
		res, err := runAttempt(ctx, g.el, algo, p, o.AttemptTimeout, attempt)
		if err == nil {
			// Only first-attempt successes feed the model: a retry's
			// wall-clock includes the faulted attempt and would teach the
			// planner the wrong engine cost.
			observePlan(planned && attempt == 0, g.el, algo, p, time.Since(start))
			return newResult(res, algo, g.el), nil
		}
		if cerr := ctx.Err(); cerr != nil {
			// The caller's context ended — possibly mid-attempt, in which
			// case err is the same cause. Never retry work nobody wants.
			return nil, cerr
		}
		lastErr = err
	}
	res, err := runAttempt(ctx, g.el, Sequential, 1, 0, 2)
	if err != nil {
		if cerr := ctx.Err(); cerr != nil {
			return nil, cerr
		}
		return nil, fmt.Errorf("bicc: sequential fallback (after %v) failed: %w", lastErr, err)
	}
	out := newResult(res, Sequential, g.el)
	out.Degraded = true
	out.DegradedCause = lastErr
	return out, nil
}

// runAttempt executes one engine run under its own cancellation token,
// watching the caller's context and, when attemptTimeout > 0, a per-attempt
// deadline that cancels with ErrAttemptTimeout. When the context carries an
// obs trace, the run becomes one span named after the algorithm (labeled
// with the attempt number and worker count) with a child span per pipeline
// phase, so ?trace=1 on bccd shows exactly which attempt ran which phases.
func runAttempt(ctx context.Context, el *graph.EdgeList, algo Algorithm, p int, attemptTimeout time.Duration, attempt int) (res *core.Result, err error) {
	cancel := &par.Canceler{}
	stop := cancel.Watch(ctx)
	defer stop()
	if attemptTimeout > 0 {
		t := time.AfterFunc(attemptTimeout, func() { cancel.Cancel(ErrAttemptTimeout) })
		defer t.Stop()
	}
	_, sp := obs.StartSpan(ctx, algo.String())
	sp.SetLabel("attempt", strconv.Itoa(attempt))
	sp.SetLabel("procs", strconv.Itoa(p))
	defer func() {
		if err != nil {
			sp.SetLabel("error", err.Error())
		}
		sp.End()
	}()
	switch algo {
	case Sequential:
		return core.SequentialT(cancel, sp, el)
	case FastBCC:
		return fastbcc.Run(p, el, fastbcc.Config{Cancel: cancel, Span: sp})
	case TVSMP, TVOpt, TVFilter:
		var cfg core.Config
		switch algo {
		case TVSMP:
			cfg = core.TVSMPConfig()
		case TVOpt:
			cfg = core.TVOptConfig()
		default:
			cfg = core.TVFilterConfig()
		}
		cfg.Cancel, cfg.Span = cancel, sp
		return core.Custom(p, el, cfg)
	}
	return nil, fmt.Errorf("bicc: unknown algorithm %v", algo)
}

// observePlan feeds one clean planned-run latency to the installed planner,
// when both conditions hold.
func observePlan(planned bool, el *graph.EdgeList, algo Algorithm, p int, d time.Duration) {
	if !planned {
		return
	}
	if pl := installedPlanner.Load(); pl != nil {
		pl.Observe(pl.FeaturesOf(el), algo.String(), p, d)
	}
}

// newResult converts a core result into the public shape and, when
// observability is on, feeds the per-phase histograms on the process-wide
// registry.
func newResult(res *core.Result, algo Algorithm, el *graph.EdgeList) *Result {
	out := &Result{
		NumComponents: res.NumComp,
		EdgeComponent: res.EdgeComp,
		Algorithm:     algo,
		g:             el,
	}
	obsOn := obs.Enabled()
	for _, ph := range res.Phases {
		out.Phases = append(out.Phases, PhaseTiming{Name: ph.Name, Duration: ph.Duration})
		if obsOn {
			phaseSeconds.With(algo.String(), ph.Name).Observe(ph.Duration)
		}
	}
	return out
}

// ArticulationPoints returns the cut vertices implied by the decomposition:
// the vertices whose incident edges span at least two blocks. The slice is
// sorted by vertex id.
func (r *Result) ArticulationPoints() []int32 {
	return core.Articulation(r.g, r.EdgeComponent)
}

// Bridges returns the indices of bridge edges (blocks of exactly one edge),
// sorted by edge index.
func (r *Result) Bridges() []int32 {
	return core.Bridges(r.g, r.EdgeComponent, r.NumComponents)
}

// Components groups edge indices by block: element k lists the edges of
// block k.
func (r *Result) Components() [][]int32 {
	out := make([][]int32, r.NumComponents)
	for i, c := range r.EdgeComponent {
		out[c] = append(out[c], int32(i))
	}
	return out
}

// IsBiconnected reports whether the whole graph is one biconnected
// component: all edges in a single block and every vertex incident to it
// (so no isolated vertices and no cut vertices).
func (r *Result) IsBiconnected() bool {
	if r.NumComponents != 1 || len(r.EdgeComponent) == 0 {
		return false
	}
	touched := make([]bool, r.g.N)
	for _, e := range r.g.Edges {
		touched[e.U] = true
		touched[e.V] = true
	}
	for _, t := range touched {
		if !t {
			return false
		}
	}
	return true
}
