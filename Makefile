GO ?= go

.PHONY: all build test race cover bench fig3 fig4 ablations verify fmt vet clean

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

cover:
	$(GO) test -cover ./...

# Full benchmark suite (every table/figure bench plus ablations and
# per-substrate microbenchmarks).
bench:
	$(GO) test -bench=. -benchmem ./...

# Regenerate the paper's figures (scale relative to the paper's n=1M).
SCALE ?= 0.1
REPS  ?= 3

fig3:
	$(GO) run ./cmd/bccbench -scale $(SCALE) -reps $(REPS) -csv results/fig3.csv | tee results/fig3.txt

fig4:
	$(GO) run ./cmd/bccbreakdown -scale $(SCALE) -reps $(REPS) -csv results/fig4.csv | tee results/fig4.txt

ablations:
	$(GO) test -run xxx -bench 'Ablation' -benchtime 3x . | tee results/ablations.txt

# Randomized cross-validation of all algorithms.
verify:
	$(GO) run ./cmd/bccverify -trials 500

fmt:
	gofmt -l -w .

vet:
	$(GO) vet ./...

clean:
	$(GO) clean ./...
