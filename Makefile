GO ?= go

.PHONY: all build test race cover bench bench-json ci fig3 fig4 ablations verify test-faults test-fastbcc test-obs lint-obs fuzz-durable fuzz-shard test-shard test-incr fuzz-incr race-service test-crash test-repl test-failover test-scrub fuzz-repl test-plan fuzz-plan fmt vet clean

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

cover:
	$(GO) test -cover ./...

# Full benchmark suite (every table/figure bench plus ablations and
# per-substrate microbenchmarks).
bench:
	$(GO) test -bench=. -benchmem ./...

# Regenerate the paper's figures (scale relative to the paper's n=1M).
SCALE ?= 0.1
REPS  ?= 3

fig3:
	$(GO) run ./cmd/bccbench -scale $(SCALE) -reps $(REPS) -csv results/fig3.csv | tee results/fig3.txt

fig4:
	$(GO) run ./cmd/bccbreakdown -scale $(SCALE) -reps $(REPS) -csv results/fig4.csv | tee results/fig4.txt

ablations:
	$(GO) test -run xxx -bench 'Ablation' -benchtime 3x . | tee results/ablations.txt

# Randomized cross-validation of all algorithms.
verify:
	$(GO) run ./cmd/bccverify -trials 500

# Fault-isolation suite: the site × kind × algorithm injection matrix, the
# supervisor/fallback tests, and the race-enabled service fault hammer.
test-faults:
	$(GO) test -race -run 'Fault|Fallback|Panic|Breaker|Drain|AttemptTimeout' . ./internal/par ./internal/faults ./internal/service

# Machine-readable medians for the five algorithms (CI trend tracking).
# BENCH_1.json is the single-p snapshot; BENCH_2.json sweeps every parallel
# engine (fast-bcc included) at p=1 and p=4 for the TV-vs-FAST-BCC
# comparison. BENCH_3.json is the planner sweep: p ∈ {1,2,4,8} across all
# three densities, with -plan adding auto-static vs auto-plan rows derived
# from the measured medians (which engine each auto policy would have
# dispatched, and what it actually cost).
bench-json:
	$(GO) run ./cmd/bccjson -scale $(SCALE) -reps $(REPS) -o BENCH_1.json
	$(GO) run ./cmd/bccjson -scale $(SCALE) -reps $(REPS) -sweep 1,4 -o BENCH_2.json
	$(GO) run ./cmd/bccjson -scale $(SCALE) -reps $(REPS) -sweep 1,2,4,8 -all -plan -o BENCH_3.json

# FAST-BCC suite: the skeleton engine's differential families (byte-equality
# vs the sequential oracle), its fault-containment and phase tests, the
# cross-engine canonical-labeling check, and the engine rows it adds to the
# fault matrix — race-enabled.
test-fastbcc:
	$(GO) test -race ./internal/fastbcc -count=1
	$(GO) test -race -run 'CanonicalLabels' ./internal/core -count=1
	$(GO) test -race -run 'ParseAlgorithm|FuzzFastBCC' . -count=1

# Observability suite: the obs registry/exposition/trace tests (race-enabled,
# including the concurrent Observe-vs-scrape check) and the service's
# /metrics + ?trace=1 integration tests.
test-obs:
	$(GO) test -race ./internal/obs -run . -count=1
	$(GO) test -race -run 'Trace|Metrics' ./internal/service -count=1

# Durability suite. fuzz-durable hammers the WAL/snapshot/result decoders
# with ~10s of coverage-guided input per target: recovery code must never
# panic or over-read on arbitrary bytes. race-service runs the whole
# service package (durable wiring included) under the race detector.
# test-crash is the kill-and-restart chaos harness: bccd as a subprocess,
# SIGKILLed at each durable.* fault site, recovered, verified.
FUZZTIME ?= 10s

fuzz-durable:
	$(GO) test ./internal/durable -run FuzzNothing -fuzz FuzzDecodeWAL -fuzztime $(FUZZTIME)
	$(GO) test ./internal/durable -run FuzzNothing -fuzz FuzzDecodeSnapshot -fuzztime $(FUZZTIME)
	$(GO) test ./internal/durable -run FuzzNothing -fuzz FuzzDecodeResult -fuzztime $(FUZZTIME)

# Shard suite. test-shard runs the differential harness (shard answers must
# equal the monolith byte for byte across 3 graph families × 4 algorithms ×
# 5 query kinds), the block-cut invariant property tests, and the manager's
# residency/fault tests — race-enabled. fuzz-shard hammers the routing-index
# and shard payload decoders like fuzz-durable does the durable codecs.
test-shard:
	$(GO) test -race ./internal/shard -count=1
	$(GO) test -race -run 'Shard' ./internal/service ./internal/faults -count=1

fuzz-shard:
	$(GO) test ./internal/shard -run FuzzNothing -fuzz FuzzDecodeIndex -fuzztime $(FUZZTIME)
	$(GO) test ./internal/shard -run FuzzNothing -fuzz FuzzDecodeShard -fuzztime $(FUZZTIME)

# Incremental suite. test-incr runs the planner's differential harness
# (every mutation sequence must leave labels byte-equal to a from-scratch
# run), the mutation endpoint's differential harness (3 graph families × 4
# engines, byte-equal JSON answers vs a server that uploaded the final
# graph), and the incr rows of the fault matrix — all race-enabled.
# fuzz-incr hammers the WAL delta-record decoder and the planner's Apply
# with arbitrary delta sequences.
test-incr:
	$(GO) test -race ./internal/incr -count=1
	$(GO) test -race -run 'Mutation|MutatedGraph|DeleteThenReupload' ./internal/service -count=1
	$(GO) test -race -run 'FaultMatrixIncr' ./internal/faults -count=1

fuzz-incr:
	$(GO) test ./internal/durable -run FuzzNothing -fuzz FuzzDecodeDelta -fuzztime $(FUZZTIME)
	$(GO) test ./internal/incr -run FuzzNothing -fuzz FuzzApplyDeltas -fuzztime $(FUZZTIME)

race-service:
	$(GO) test -race ./internal/service ./internal/durable -count=1

test-crash:
	$(GO) test ./cmd/bccd -run 'Crash|SIGTERM' -count=1 -v

# Replication suite. test-repl runs the protocol/stream tests (ordering,
# ring-overflow snapshot resync, gap detection, quorum degrade), the router
# tests (hedging, most-caught-up promotion, mutation refusal), and the
# service-level differential harness: a warm standby must answer every graph
# family byte-equal to its primary under all four engines, refuse writes
# read-only, and leave a data directory that is a valid PR 4 recovery image
# — all race-enabled. The delete-vs-mutation race test rides along.
test-repl:
	$(GO) test -race ./internal/repl -count=1
	$(GO) test -race -run 'Replication|Promotion|StandbyWAL|PrimaryAlone|DeleteRacesMutation' ./internal/service -count=1

# Node-kill chaos harness: primary and standby bccd as separate processes,
# the primary SIGKILLed at the repl.ship/repl.ack fault sites mid-batch
# (and the standby at repl.promote mid-promotion), then router-driven
# failover asserted to serve every acked record byte-identical with the
# un-acked tail handled per site.
test-failover:
	$(GO) test ./cmd/bccd -run 'NodeKill' -count=1 -v

# Self-healing storage suite. test-scrub runs (race-enabled) the scrubber
# core, the KindCorrupt injection matrix rows (faults + per-tier image
# checks + ring scrub), the service-level repair-ladder/quarantine tests,
# and the bit-rot chaos harness: bccd subprocesses with real bytes flipped
# on disk per tier, scrubbed, and proven byte-identical afterward.
# fuzz-repl hammers the replication frame decoders like fuzz-durable does
# the durable codecs: arbitrary wire bytes must error, never panic, and
# never allocate far ahead of the stream.
test-scrub:
	$(GO) test -race ./internal/scrub -count=1
	$(GO) test -race -run 'Corrupt|Scrub|CheckWALImage|CheckSnapshotImage|CheckSpillImage|CheckBlobImage|SpillKeys' ./internal/faults ./internal/durable ./internal/repl ./internal/service -count=1
	$(GO) test -race -run 'Oracle|ReconstructRejects' . -count=1
	$(GO) test ./cmd/bccd -run 'BitRot' -count=1 -v

# Adaptive-planner suite. test-plan runs (race-enabled) the plan package's
# golden decision table and breaker-filter property tests, the library's
# planner-wiring tests, and the service tests: the fast-bcc-at-p=1
# acceptance check, ?explain=1 echo-vs-dispatch, open-breaker avoidance,
# the planner-on vs planner-off differential harness (BCC + incr mutations
# + shard endpoints, byte-equal answers), and the /statsz plan golden.
# fuzz-plan hammers feature extraction with arbitrary graph shapes: no
# panics, every bucket class in range.
test-plan:
	$(GO) test -race ./internal/plan -count=1
	$(GO) test -race -run 'Plan' . ./internal/service -count=1

fuzz-plan:
	$(GO) test ./internal/plan -run FuzzNothing -fuzz FuzzFeatures -fuzztime $(FUZZTIME)

fuzz-repl:
	$(GO) test ./internal/repl -run FuzzNothing -fuzz FuzzReadMsg$$ -fuzztime $(FUZZTIME)
	$(GO) test ./internal/repl -run FuzzNothing -fuzz FuzzReadMsgAllocationBound -fuzztime $(FUZZTIME)
	$(GO) test ./internal/repl -run FuzzNothing -fuzz FuzzParseHello -fuzztime $(FUZZTIME)
	$(GO) test ./internal/repl -run FuzzNothing -fuzz FuzzParseSnapBegin -fuzztime $(FUZZTIME)
	$(GO) test ./internal/repl -run FuzzNothing -fuzz FuzzParseRecord -fuzztime $(FUZZTIME)
	$(GO) test ./internal/repl -run FuzzNothing -fuzz FuzzParseU64 -fuzztime $(FUZZTIME)
	$(GO) test ./internal/repl -run FuzzNothing -fuzz FuzzParseU32 -fuzztime $(FUZZTIME)

# Static analysis for the obs package beyond go vet. staticcheck is optional:
# the target degrades to a notice when the tool isn't installed.
lint-obs:
	$(GO) vet ./internal/obs
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./internal/obs; \
	else \
		echo "lint-obs: staticcheck not installed, skipped"; \
	fi

# The gate run before merging: static checks, race-clean tests, the
# fault-isolation suite, the observability suite, the durability suite
# (decoder fuzzing, race-enabled service tests, crash harness), the shard
# suite (differential harness + codec fuzzing), the incremental suite
# (mutation differential harness + delta fuzzing), the replication suite
# (standby differential harness + multi-process node-kill failover), the
# self-healing suite (scrubber + bit-rot chaos harness + repl frame
# fuzzing), the adaptive-planner suite (golden decision table + differential
# harness + feature fuzzing), and a benchmark snapshot.
ci: vet lint-obs race test-fastbcc test-faults test-obs fuzz-durable test-shard fuzz-shard test-incr fuzz-incr race-service test-crash test-repl test-failover test-scrub fuzz-repl test-plan fuzz-plan bench-json

fmt:
	gofmt -l -w .

vet:
	$(GO) vet ./...

clean:
	$(GO) clean ./...
