package bicc

import (
	"io"

	"bicc/internal/gen"
	"bicc/internal/graph"
)

// Generators for the instance families used by the paper's evaluation and
// by the examples. All are deterministic in their seed.

// RandomGraph returns a graph with n vertices and m distinct uniformly
// random edges — the paper's §5 workload. It returns an error when m
// exceeds n(n-1)/2.
func RandomGraph(n, m int, seed int64) (g *Graph, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = errString("bicc: " + r.(string))
		}
	}()
	return &Graph{el: gen.Random(n, m, seed)}, nil
}

// RandomConnectedGraph returns a connected random graph: a random spanning
// tree plus m-(n-1) random extra edges. It returns an error when m < n-1 or
// m > n(n-1)/2.
func RandomConnectedGraph(n, m int, seed int64) (g *Graph, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = errString("bicc: " + r.(string))
		}
	}()
	return &Graph{el: gen.RandomConnected(n, m, seed)}, nil
}

// MeshGraph returns an r x c grid graph, vertex ids row-major.
func MeshGraph(r, c int) *Graph { return &Graph{el: gen.Mesh(r, c)} }

// TorusGraph returns an r x c torus.
func TorusGraph(r, c int) *Graph { return &Graph{el: gen.Torus(r, c)} }

// ChainGraph returns a path on n vertices — the paper's pathological
// large-diameter case.
func ChainGraph(n int) *Graph { return &Graph{el: gen.Chain(n)} }

// DenseGraph returns a graph retaining the given fraction of all possible
// edges (the Woo–Sahni experimental regime).
func DenseGraph(n int, frac float64, seed int64) *Graph {
	return &Graph{el: gen.Dense(n, frac, seed)}
}

// ReadGraph parses the textual edge-list format ("p <n> <m>" header then
// one "u v" pair per line; '#' comments allowed).
func ReadGraph(r io.Reader) (*Graph, error) {
	el, err := graph.Read(r)
	if err != nil {
		return nil, err
	}
	return &Graph{el: el}, nil
}

// WriteGraph serializes g in the textual edge-list format.
func WriteGraph(w io.Writer, g *Graph) error {
	return graph.Write(w, g.el)
}

type errString string

func (e errString) Error() string { return string(e) }

// ReadGraphDIMACS parses the DIMACS edge format ("p edge n m" / "e u v",
// 1-based) and normalizes the result (self loops and duplicates dropped).
func ReadGraphDIMACS(r io.Reader) (*Graph, error) {
	el, err := graph.ReadDIMACS(r)
	if err != nil {
		return nil, err
	}
	norm, _, _ := el.Normalize()
	if err := norm.Validate(); err != nil {
		return nil, err
	}
	return &Graph{el: norm}, nil
}

// WriteGraphDIMACS serializes g in the DIMACS edge format.
func WriteGraphDIMACS(w io.Writer, g *Graph) error {
	return graph.WriteDIMACS(w, g.el)
}

// ReadGraphBinary parses the compact binary edge-list format.
func ReadGraphBinary(r io.Reader) (*Graph, error) {
	el, err := graph.ReadBinary(r)
	if err != nil {
		return nil, err
	}
	return &Graph{el: el}, nil
}

// WriteGraphBinary serializes g in the compact binary edge-list format
// (about 10x faster to parse than the text format at paper scale).
func WriteGraphBinary(w io.Writer, g *Graph) error {
	return graph.WriteBinary(w, g.el)
}

// PreferentialAttachmentGraph returns a scale-free graph (Barabási–Albert
// style): each new vertex attaches ~k edges to earlier vertices with
// degree-biased choice.
func PreferentialAttachmentGraph(n, k int, seed int64) *Graph {
	return &Graph{el: gen.PreferentialAttachment(n, k, seed)}
}

// GeometricGraph returns a random geometric graph: n points in the unit
// square, edges between pairs within distance r.
func GeometricGraph(n int, r float64, seed int64) *Graph {
	return &Graph{el: gen.Geometric(n, r, seed)}
}
