package bicc

import (
	"testing"

	"bicc/internal/obs"
	"bicc/internal/plan"
)

// denseGraph builds a connected m ≈ 4n random-ish graph big enough to clear
// the planner's small-work region: a Hamiltonian cycle plus three chords per
// vertex, deterministic so the test is stable.
func denseGraph(t *testing.T, n int32) *Graph {
	t.Helper()
	var edges []Edge
	for v := int32(0); v < n; v++ {
		edges = append(edges, Edge{U: v, V: (v + 1) % n})
		for _, step := range []int32{7, 131, 2477} {
			w := (v + step) % n
			if w != v {
				edges = append(edges, Edge{U: v, V: w})
			}
		}
	}
	g, _, _, err := NewGraphNormalized(int(n), edges)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// TestPlannerDrivesAutoRuns installs an adaptive planner and checks the
// library's Auto path defers to it: a dense large graph pinned to one worker
// dispatches fast-bcc (the FAST-BCC promotion), the clean run feeds the
// online model, and uninstalling the planner restores the static §4 rule.
func TestPlannerDrivesAutoRuns(t *testing.T) {
	pl := plan.New(plan.Config{MaxProcs: 4, Registry: obs.NewRegistry(), ExploreEvery: -1})
	SetPlanner(pl)
	defer SetPlanner(nil)
	if InstalledPlanner() != pl {
		t.Fatal("InstalledPlanner did not return the installed planner")
	}

	g := denseGraph(t, 20_000)
	res, err := BiconnectedComponents(g, &Options{Algorithm: Auto, Procs: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Algorithm != FastBCC {
		t.Fatalf("planned auto run used %v, want %v", res.Algorithm, FastBCC)
	}
	s := pl.Snapshot()
	if s.Decisions != 1 || s.ByEngine["fast-bcc"] != 1 {
		t.Fatalf("planner snapshot after run: %+v", s)
	}
	if s.Observations != 1 {
		t.Fatalf("clean run not observed: %+v", s)
	}

	// Explicit engine requests bypass the planner entirely.
	res, err = BiconnectedComponents(g, &Options{Algorithm: TVOpt, Procs: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Algorithm != TVOpt {
		t.Fatalf("explicit run used %v", res.Algorithm)
	}
	if s := pl.Snapshot(); s.Decisions != 1 || s.Observations != 1 {
		t.Fatalf("explicit run leaked into the planner: %+v", s)
	}

	SetPlanner(nil)
	res, err = BiconnectedComponents(g, &Options{Algorithm: Auto, Procs: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Algorithm != Sequential {
		t.Fatalf("static auto at p=1 used %v, want %v", res.Algorithm, Sequential)
	}
}

// TestPlanAlgorithmUnpinned lets the planner choose procs too and checks the
// answer stays identical to a static run — planner choices change latency,
// never results.
func TestPlanAlgorithmUnpinned(t *testing.T) {
	pl := plan.New(plan.Config{MaxProcs: 4, Registry: obs.NewRegistry(), ExploreEvery: -1, Frozen: true})
	SetPlanner(pl)
	defer SetPlanner(nil)

	g := denseGraph(t, 20_000)
	algo, procs := PlanAlgorithm(g, Auto, 0)
	if algo == Auto || procs < 1 || procs > 4 {
		t.Fatalf("PlanAlgorithm returned (%v, %d)", algo, procs)
	}
	planned, err := BiconnectedComponents(g, &Options{Algorithm: Auto})
	if err != nil {
		t.Fatal(err)
	}
	SetPlanner(nil)
	static, err := BiconnectedComponents(g, &Options{Algorithm: Auto})
	if err != nil {
		t.Fatal(err)
	}
	if planned.NumComponents != static.NumComponents {
		t.Fatalf("component counts differ: %d vs %d", planned.NumComponents, static.NumComponents)
	}
	for i := range planned.EdgeComponent {
		if planned.EdgeComponent[i] != static.EdgeComponent[i] {
			t.Fatalf("edge %d labeled %d (planned) vs %d (static)", i, planned.EdgeComponent[i], static.EdgeComponent[i])
		}
	}
}
