package bicc

import (
	"context"
	"errors"
	"testing"
	"time"

	"bicc/internal/faults"
	"bicc/internal/par"
)

// pipelinePanicPlan panics at every hit of core.pipeline — a site every
// parallel engine crosses between phases and the sequential engine never
// does, so the fallback path stays clean.
func pipelinePanicPlan() *faults.Plan {
	return &faults.Plan{Seed: 1, Rules: []*faults.Rule{faults.NewRule(faults.KindPanic, "core.pipeline")}}
}

func TestFallbackSequentialOnPersistentPanic(t *testing.T) {
	defer faults.Deactivate()
	g := triangleBridge(t)
	faults.Activate(pipelinePanicPlan())
	res, err := BiconnectedComponentsCtx(context.Background(), g,
		&Options{Algorithm: TVOpt, Procs: 4, Fallback: FallbackSequential})
	faults.Deactivate()
	if err != nil {
		t.Fatalf("fallback did not absorb the fault: %v", err)
	}
	if !res.Degraded {
		t.Fatal("result not marked Degraded")
	}
	if res.Algorithm != Sequential {
		t.Errorf("degraded result reports %v, want sequential", res.Algorithm)
	}
	var ip *faults.InjectedPanic
	if !errors.As(res.DegradedCause, &ip) {
		t.Errorf("DegradedCause = %v, want the injected panic", res.DegradedCause)
	}
	if res.NumComponents != 2 {
		t.Errorf("NumComponents = %d, want 2", res.NumComponents)
	}
}

func TestFallbackRetryAbsorbsTransientFault(t *testing.T) {
	defer faults.Deactivate()
	g := triangleBridge(t)
	// One panic only: the first attempt dies, the retry runs clean, and the
	// result must NOT be degraded — the requested engine produced it.
	r := faults.NewRule(faults.KindPanic, "core.pipeline")
	r.Count = 1
	faults.Activate(&faults.Plan{Seed: 1, Rules: []*faults.Rule{r}})
	res, err := BiconnectedComponentsCtx(context.Background(), g,
		&Options{Algorithm: TVOpt, Procs: 4, Fallback: FallbackSequential})
	faults.Deactivate()
	if err != nil {
		t.Fatalf("retry did not absorb a one-shot fault: %v", err)
	}
	if res.Degraded {
		t.Error("transient fault degraded the result; the retry should have handled it")
	}
	if res.Algorithm != TVOpt {
		t.Errorf("retry ran %v, want tv-opt", res.Algorithm)
	}
	if res.NumComponents != 2 {
		t.Errorf("NumComponents = %d, want 2", res.NumComponents)
	}
}

func TestFallbackNoneReturnsTypedError(t *testing.T) {
	defer faults.Deactivate()
	g := triangleBridge(t)
	faults.Activate(pipelinePanicPlan())
	res, err := BiconnectedComponentsCtx(context.Background(), g,
		&Options{Algorithm: TVOpt, Procs: 4})
	faults.Deactivate()
	if err == nil {
		t.Fatalf("FallbackNone swallowed the fault: %+v", res)
	}
	var pe *par.PanicError
	if !errors.As(err, &pe) {
		t.Errorf("error %T is not a contained panic: %v", err, err)
	}
	var ip *faults.InjectedPanic
	if !errors.As(err, &ip) || ip.Site != "core.pipeline" {
		t.Errorf("error does not unwrap to the injected panic: %v", err)
	}
}

func TestAttemptTimeoutDegradesToSequential(t *testing.T) {
	defer faults.Deactivate()
	g := triangleBridge(t)
	// Stall every pipeline checkpoint far past the per-attempt budget; both
	// attempts must be canceled with ErrAttemptTimeout and the sequential
	// engine (free of the delay site) must produce the answer.
	r := faults.NewRule(faults.KindDelay, "core.pipeline")
	r.Delay = 100 * time.Millisecond
	faults.Activate(&faults.Plan{Seed: 1, Rules: []*faults.Rule{r}})
	res, err := BiconnectedComponentsCtx(context.Background(), g,
		&Options{Algorithm: TVFilter, Procs: 4, Fallback: FallbackSequential, AttemptTimeout: 10 * time.Millisecond})
	faults.Deactivate()
	if err != nil {
		t.Fatalf("attempt timeout was not degraded: %v", err)
	}
	if !res.Degraded {
		t.Fatal("result not marked Degraded")
	}
	if !errors.Is(res.DegradedCause, ErrAttemptTimeout) {
		t.Errorf("DegradedCause = %v, want ErrAttemptTimeout", res.DegradedCause)
	}
	if res.NumComponents != 2 {
		t.Errorf("NumComponents = %d, want 2", res.NumComponents)
	}
}

func TestFallbackNeverRetriesDeadCaller(t *testing.T) {
	defer faults.Deactivate()
	g := triangleBridge(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := BiconnectedComponentsCtx(ctx, g,
		&Options{Algorithm: TVOpt, Fallback: FallbackSequential})
	if !errors.Is(err, context.Canceled) {
		t.Errorf("canceled caller got %v, want context.Canceled", err)
	}
}

func TestFallbackSpuriousCancellationDegrades(t *testing.T) {
	defer faults.Deactivate()
	g := triangleBridge(t)
	// An internal spurious cancellation (not the caller's context) is an
	// engine fault like any other: retried, then degraded.
	faults.Activate(&faults.Plan{Seed: 1,
		Rules: []*faults.Rule{faults.NewRule(faults.KindCancel, "core.pipeline")}})
	res, err := BiconnectedComponentsCtx(context.Background(), g,
		&Options{Algorithm: TVSMP, Procs: 4, Fallback: FallbackSequential})
	faults.Deactivate()
	if err != nil {
		t.Fatalf("spurious cancellation escaped the supervisor: %v", err)
	}
	if !res.Degraded {
		t.Fatal("result not marked Degraded")
	}
	if !errors.Is(res.DegradedCause, faults.ErrInjected) {
		t.Errorf("DegradedCause = %v, want ErrInjected", res.DegradedCause)
	}
	if res.NumComponents != 2 {
		t.Errorf("NumComponents = %d, want 2", res.NumComponents)
	}
}
