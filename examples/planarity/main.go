// Biconnected components as the classical preprocessing step for graph
// planarity testing — the paper's second named application ("is also used
// in graph planarity testing").
//
// A graph is planar iff all of its biconnected components are planar, so
// planarity testers first split the graph into blocks and test each block
// independently. This example performs the split on a road-network-like
// graph (a mesh of city blocks joined by bridges across a river, plus
// cul-de-sacs) and then applies Euler's necessary condition m <= 3v - 6 to
// every block — a cheap certificate that no block is "obviously"
// non-planar. One deliberately embedded K5 (non-planar clique) is caught by
// the same check.
//
//	run: go run ./examples/planarity
package main

import (
	"fmt"
	"log"

	"bicc"
)

func main() {
	var edges []bicc.Edge
	n := 0
	vertex := func() int32 { n++; return int32(n - 1) }
	link := func(u, v int32) { edges = append(edges, bicc.Edge{U: u, V: v}) }

	// District A: a 6x6 street grid (planar, biconnected).
	gridA := buildGrid(6, 6, vertex, link)
	// District B: a 5x8 street grid.
	gridB := buildGrid(5, 8, vertex, link)
	// One bridge across the river joins the districts: a cut edge.
	link(gridA[5][5], gridB[0][0])
	// A few cul-de-sacs (pendant chains) off district A.
	cul := vertex()
	link(gridA[0][0], cul)
	cul2 := vertex()
	link(cul, cul2)
	// A deliberately non-planar interchange: K5 hanging off district B.
	k5 := make([]int32, 5)
	for i := range k5 {
		k5[i] = vertex()
	}
	for i := 0; i < 5; i++ {
		for j := i + 1; j < 5; j++ {
			link(k5[i], k5[j])
		}
	}
	link(gridB[4][7], k5[0])

	g, err := bicc.NewGraph(n, edges)
	if err != nil {
		log.Fatal(err)
	}
	res, err := bicc.BiconnectedComponents(g, &bicc.Options{Algorithm: bicc.TVFilter})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("road network: %d junctions, %d segments\n", g.NumVertices(), g.NumEdges())
	fmt.Printf("blocks to test independently: %d\n\n", res.NumComponents)

	// Apply Euler's bound per block.
	for k, comp := range res.Components() {
		verts := map[int32]bool{}
		for _, i := range comp {
			e := g.Edges()[i]
			verts[e.U] = true
			verts[e.V] = true
		}
		v, m := len(verts), len(comp)
		status := "passes Euler bound (candidate planar)"
		if v >= 3 && m > 3*v-6 {
			status = "VIOLATES m <= 3v-6: certainly non-planar"
		}
		if m == 1 {
			status = "bridge (trivially planar)"
		}
		if m > 1 || status != "bridge (trivially planar)" {
			fmt.Printf("block %2d: v=%3d m=%3d  %s\n", k, v, m, status)
		}
	}

	// Summary: only the K5 block must fail.
	fail := 0
	for _, comp := range res.Components() {
		verts := map[int32]bool{}
		for _, i := range comp {
			e := g.Edges()[i]
			verts[e.U] = true
			verts[e.V] = true
		}
		if v, m := len(verts), len(comp); v >= 3 && m > 3*v-6 {
			fail++
		}
	}
	fmt.Printf("\nblocks failing the planarity bound: %d (expected 1: the K5 interchange)\n", fail)
}

// buildGrid wires up an r x c grid and returns the vertex matrix.
func buildGrid(r, c int, vertex func() int32, link func(u, v int32)) [][]int32 {
	m := make([][]int32, r)
	for i := range m {
		m[i] = make([]int32, c)
		for j := range m[i] {
			m[i][j] = vertex()
		}
	}
	for i := 0; i < r; i++ {
		for j := 0; j < c; j++ {
			if j+1 < c {
				link(m[i][j], m[i][j+1])
			}
			if i+1 < r {
				link(m[i][j], m[i+1][j])
			}
		}
	}
	return m
}
