// Biconnectivity augmentation planning — the related problem the paper
// cites as [11] (Hsu & Ramachandran, "On finding a smallest augmentation to
// biconnect a graph"). Finding the *smallest* augmentation is involved;
// this example implements the classical block-cut-tree heuristic that adds
// ceil(L/2) links, where L is the number of leaf blocks: pair up leaf
// blocks of the block-cut tree and connect a non-cut vertex of one with a
// non-cut vertex of the other. For a tree-shaped block structure this bound
// is optimal.
//
// The example builds a vulnerable topology, plans the augmentation, applies
// it, and re-runs the decomposition to show all cut vertices disappeared.
//
//	run: go run ./examples/augment
package main

import (
	"fmt"
	"log"

	"bicc"
)

func main() {
	// A deliberately fragile network: a central ring with three hanging
	// chains and one hanging ring.
	var edges []bicc.Edge
	n := 0
	vertex := func() int32 { n++; return int32(n - 1) }
	link := func(u, v int32) { edges = append(edges, bicc.Edge{U: u, V: v}) }

	ring := make([]int32, 5)
	for i := range ring {
		ring[i] = vertex()
	}
	for i := range ring {
		link(ring[i], ring[(i+1)%len(ring)])
	}
	for c := 0; c < 3; c++ {
		prev := ring[c]
		for hop := 0; hop < 3; hop++ {
			v := vertex()
			link(prev, v)
			prev = v
		}
	}
	sub := make([]int32, 4)
	for i := range sub {
		sub[i] = vertex()
	}
	for i := range sub {
		link(sub[i], sub[(i+1)%len(sub)])
	}
	link(ring[4], sub[0])

	g, err := bicc.NewGraph(n, edges)
	if err != nil {
		log.Fatal(err)
	}
	res, err := bicc.BiconnectedComponents(g, nil)
	if err != nil {
		log.Fatal(err)
	}
	bct := res.BlockCutTree()
	fmt.Printf("before: %d blocks, %d cut vertices, %d leaf blocks\n",
		bct.NumBlocks(), len(bct.CutVertices()), len(bct.LeafBlocks()))

	// Plan: pick one non-cut vertex per leaf block, pair them up around the
	// circle of leaves, close the circle if odd.
	leaves := bct.LeafBlocks()
	isCut := map[int32]bool{}
	for _, v := range bct.CutVertices() {
		isCut[v] = true
	}
	anchors := make([]int32, 0, len(leaves))
	for _, b := range leaves {
		for _, v := range bct.VerticesOfBlock(b) {
			if !isCut[v] {
				anchors = append(anchors, v)
				break
			}
		}
	}
	var newLinks []bicc.Edge
	for i := 0; i+1 < len(anchors); i += 2 {
		newLinks = append(newLinks, bicc.Edge{U: anchors[i], V: anchors[i+1]})
	}
	if len(anchors) > 2 && len(anchors)%2 == 1 {
		newLinks = append(newLinks, bicc.Edge{U: anchors[len(anchors)-1], V: anchors[0]})
	}
	// Pairing adjacent leaves can leave the join point cut; close the loop
	// across all leaves for robustness when more than one pair exists.
	if len(anchors) > 3 {
		newLinks = append(newLinks, bicc.Edge{U: anchors[1], V: anchors[2]})
	}
	fmt.Printf("planned %d augmentation links:\n", len(newLinks))
	for _, e := range newLinks {
		fmt.Printf("  add %d -- %d\n", e.U, e.V)
	}

	g2, _, _, err := bicc.NewGraphNormalized(n, append(append([]bicc.Edge(nil), edges...), newLinks...))
	if err != nil {
		log.Fatal(err)
	}
	res2, err := bicc.BiconnectedComponents(g2, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after: %d blocks, %d cut vertices, biconnected=%v\n",
		res2.NumComponents, len(res2.ArticulationPoints()), res2.IsBiconnected())
	if cuts := res2.ArticulationPoints(); len(cuts) > 0 {
		fmt.Printf("remaining cuts: %v (heuristic is not always optimal in one round)\n", cuts)
	}
}
