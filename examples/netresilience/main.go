// Network resilience analysis — the paper's motivating application
// ("finding biconnected components has application in fault-tolerant
// network design").
//
// We synthesize an ISP-like topology: a ring of core routers with chords
// (biconnected backbone), regional aggregation rings hanging off core
// routers, and leaf access links. Biconnected components analysis then
// pinpoints the single points of failure: every articulation point is a
// router whose loss partitions customers, and every bridge is an
// unprotected link.
//
//	run: go run ./examples/netresilience
package main

import (
	"fmt"
	"log"
	"math/rand"

	"bicc"
)

type builder struct {
	n     int
	edges []bicc.Edge
	name  map[int32]string
}

func (b *builder) vertex(name string) int32 {
	v := int32(b.n)
	b.n++
	b.name[v] = name
	return v
}

func (b *builder) link(u, v int32) {
	b.edges = append(b.edges, bicc.Edge{U: u, V: v})
}

func main() {
	rng := rand.New(rand.NewSource(7))
	b := &builder{name: map[int32]string{}}

	// Core: 8 routers in a ring with 3 chords — survives any single
	// failure.
	const coreSize = 8
	core := make([]int32, coreSize)
	for i := range core {
		core[i] = b.vertex(fmt.Sprintf("core-%d", i))
	}
	for i := range core {
		b.link(core[i], core[(i+1)%coreSize])
	}
	b.link(core[0], core[4])
	b.link(core[1], core[5])
	b.link(core[3], core[7])

	// Regions: each hangs off ONE core router (that router becomes a single
	// point of failure) as a small ring of aggregation switches.
	const regions = 4
	for r := 0; r < regions; r++ {
		attach := core[rng.Intn(coreSize)]
		ringSize := 3 + rng.Intn(3)
		ring := make([]int32, ringSize)
		for i := range ring {
			ring[i] = b.vertex(fmt.Sprintf("agg-%d-%d", r, i))
		}
		for i := range ring {
			b.link(ring[i], ring[(i+1)%ringSize])
		}
		b.link(attach, ring[0]) // single uplink: a bridge
		// Customers: leaf links off the aggregation ring.
		for c := 0; c < 2+rng.Intn(3); c++ {
			cust := b.vertex(fmt.Sprintf("cust-%d-%d", r, c))
			b.link(ring[rng.Intn(ringSize)], cust)
		}
	}
	// One dual-homed region: protected by two uplinks to different cores.
	dh := make([]int32, 4)
	for i := range dh {
		dh[i] = b.vertex(fmt.Sprintf("agg-dual-%d", i))
	}
	for i := range dh {
		b.link(dh[i], dh[(i+1)%len(dh)])
	}
	b.link(core[2], dh[0])
	b.link(core[6], dh[2])

	g, err := bicc.NewGraph(b.n, b.edges)
	if err != nil {
		log.Fatal(err)
	}
	res, err := bicc.BiconnectedComponents(g, &bicc.Options{Algorithm: bicc.TVOpt})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("topology: %d devices, %d links, %d biconnected components\n",
		g.NumVertices(), g.NumEdges(), res.NumComponents)

	cuts := res.ArticulationPoints()
	fmt.Printf("\nsingle points of failure (%d routers):\n", len(cuts))
	for _, v := range cuts {
		fmt.Printf("  %s\n", b.name[v])
	}

	bridges := res.Bridges()
	fmt.Printf("\nunprotected links (%d bridges):\n", len(bridges))
	for _, i := range bridges {
		e := g.Edges()[i]
		fmt.Printf("  %s -- %s\n", b.name[e.U], b.name[e.V])
	}

	// The dual-homed region must share a block with the core: verify no
	// bridge touches it.
	fmt.Println("\nsanity: dual-homed region is bridge-free --", func() string {
		for _, i := range bridges {
			e := g.Edges()[i]
			for _, v := range dh {
				if e.U == v || e.V == v {
					return "FAILED"
				}
			}
		}
		return "ok"
	}())
}
