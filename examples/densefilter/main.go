// Edge filtering on denser graphs — a live demonstration of the paper's §4
// observation: the denser the graph, the more nontree edges are
// non-essential for biconnectivity, and the more TV-filter wins by running
// Tarjan–Vishkin on at most 2(n-1) edges instead of m.
//
// The program sweeps edge density on a fixed vertex count, times TV-opt and
// TV-filter on each instance, and prints the paper's predicted crossover:
// filtering costs a little at extreme sparsity and pays off increasingly
// with density.
//
//	run: go run ./examples/densefilter
package main

import (
	"fmt"
	"log"
	"runtime"
	"time"

	"bicc"
)

func timeIt(g *bicc.Graph, algo bicc.Algorithm, procs int) (time.Duration, *bicc.Result) {
	// Median of 3 runs.
	var best time.Duration
	var res *bicc.Result
	times := make([]time.Duration, 0, 3)
	for i := 0; i < 3; i++ {
		start := time.Now()
		r, err := bicc.BiconnectedComponents(g, &bicc.Options{Algorithm: algo, Procs: procs})
		if err != nil {
			log.Fatal(err)
		}
		times = append(times, time.Since(start))
		res = r
	}
	best = times[0]
	for _, t := range times[1:] {
		if t < best {
			best = t
		}
	}
	return best, res
}

func main() {
	const n = 50_000
	p := runtime.GOMAXPROCS(0)
	fmt.Printf("n=%d vertices, %d workers; sweeping density (paper §4)\n\n", n, p)
	fmt.Printf("%8s %10s %12s %12s %8s %14s\n",
		"m/n", "m", "tv-opt", "tv-filter", "ratio", "edges filtered")
	for _, mult := range []int{1, 2, 4, 8, 12, 16} {
		m := mult * n
		g, err := bicc.RandomConnectedGraph(n, m, int64(mult))
		if err != nil {
			log.Fatal(err)
		}
		tOpt, rOpt := timeIt(g, bicc.TVOpt, p)
		tFil, rFil := timeIt(g, bicc.TVFilter, p)
		if rOpt.NumComponents != rFil.NumComponents {
			log.Fatalf("m=%d: algorithms disagree (%d vs %d components)",
				m, rOpt.NumComponents, rFil.NumComponents)
		}
		// The filter keeps at most 2(n-1) edges.
		filtered := m - 2*(n-1)
		if filtered < 0 {
			filtered = 0
		}
		fmt.Printf("%8d %10d %12v %12v %8.2f %14d\n",
			mult, m,
			tOpt.Round(time.Microsecond), tFil.Round(time.Microsecond),
			float64(tOpt)/float64(tFil), filtered)
	}
	fmt.Println("\nratio > 1 means TV-filter is faster; the paper reports ~2x at m = n log n.")
}
