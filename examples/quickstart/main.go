// Quickstart: build a small graph, decompose it into biconnected
// components, and read off articulation points and bridges.
//
// The graph is the paper's Fig. 1 example, G1: a biconnected "ladder" of
// triangles, with an extra pendant vertex attached to show a bridge.
//
//	run: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"bicc"
)

func main() {
	// Vertices 0..5 form two stacked squares with diagonals (biconnected);
	// vertex 6 hangs off vertex 5 by a bridge.
	edges := []bicc.Edge{
		{U: 0, V: 1}, // t1
		{U: 0, V: 2}, // t3
		{U: 1, V: 3}, // t4 side
		{U: 2, V: 3}, // bottom of first square
		{U: 0, V: 3}, // diagonal e1
		{U: 2, V: 4}, // t5
		{U: 3, V: 5}, // t6
		{U: 4, V: 5}, // bottom of second square
		{U: 2, V: 5}, // diagonal e2
		{U: 5, V: 6}, // pendant bridge
	}
	g, err := bicc.NewGraph(7, edges)
	if err != nil {
		log.Fatal(err)
	}

	res, err := bicc.BiconnectedComponents(g, nil) // nil = Auto, GOMAXPROCS
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("algorithm used: %v\n", res.Algorithm)
	fmt.Printf("biconnected components: %d\n", res.NumComponents)
	for k, comp := range res.Components() {
		fmt.Printf("  block %d:", k)
		for _, i := range comp {
			e := g.Edges()[i]
			fmt.Printf(" (%d,%d)", e.U, e.V)
		}
		fmt.Println()
	}
	fmt.Printf("articulation points: %v\n", res.ArticulationPoints())
	fmt.Printf("bridges (edge indices): %v\n", res.Bridges())

	// Force a specific algorithm and inspect the paper's Fig. 4 phases.
	res2, err := bicc.BiconnectedComponents(g, &bicc.Options{
		Algorithm: bicc.TVFilter,
		Procs:     2,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nTV-filter phase breakdown:")
	for _, ph := range res2.Phases {
		fmt.Printf("  %-22s %v\n", ph.Name, ph.Duration)
	}
}
