package bicc

import (
	"strings"
	"testing"
)

// TestReconstructResultRoundTrip persists nothing but proves the durability
// contract ReconstructResult exists for: labels from a real decomposition
// reconstruct into a Result that passes the independent Verify check, and
// damaged labels do not.
func TestReconstructResultRoundTrip(t *testing.T) {
	g, err := RandomConnectedGraph(200, 600, 11)
	if err != nil {
		t.Fatal(err)
	}
	orig, err := BiconnectedComponents(g, &Options{Algorithm: TVOpt, Procs: 4})
	if err != nil {
		t.Fatal(err)
	}
	rec, err := ReconstructResult(g, orig.Algorithm, orig.EdgeComponent)
	if err != nil {
		t.Fatal(err)
	}
	if rec.NumComponents != orig.NumComponents {
		t.Fatalf("NumComponents = %d, want %d", rec.NumComponents, orig.NumComponents)
	}
	if err := Verify(g, rec); err != nil {
		t.Fatalf("reconstructed result failed Verify: %v", err)
	}
	if got, want := len(rec.ArticulationPoints()), len(orig.ArticulationPoints()); got != want {
		t.Fatalf("articulation points: %d, want %d", got, want)
	}

	// Tampered labels must be caught — by ReconstructResult for shape
	// errors, by Verify for structural ones.
	if _, err := ReconstructResult(g, TVOpt, orig.EdgeComponent[:3]); err == nil {
		t.Fatal("short label slice accepted")
	}
	bad := append([]int32(nil), orig.EdgeComponent...)
	bad[0] = -1
	if _, err := ReconstructResult(g, TVOpt, bad); err == nil || !strings.Contains(err.Error(), "negative") {
		t.Fatalf("negative label: %v", err)
	}
	if orig.NumComponents > 1 {
		swapped := append([]int32(nil), orig.EdgeComponent...)
		for i, c := range swapped {
			if c != swapped[0] {
				swapped[i], swapped[0] = swapped[0], swapped[i]
				break
			}
		}
		rec2, err := ReconstructResult(g, TVOpt, swapped)
		if err != nil {
			t.Fatal(err)
		}
		if err := Verify(g, rec2); err == nil {
			t.Fatal("Verify accepted swapped block labels")
		}
	}
	if _, err := ReconstructResult(nil, TVOpt, nil); err == nil {
		t.Fatal("nil graph accepted")
	}
}
