package bicc

import (
	"os/exec"
	"strings"
	"testing"
)

// TestExamplesRun executes every example program and checks its key output
// line, guaranteeing the examples stay runnable as the API evolves.
func TestExamplesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	cases := map[string]string{
		"./examples/quickstart":    "biconnected components: 2",
		"./examples/netresilience": "single points of failure",
		"./examples/planarity":     "blocks failing the planarity bound: 1",
		"./examples/augment":       "biconnected=true",
	}
	for pkg, want := range cases {
		pkg, want := pkg, want
		t.Run(strings.TrimPrefix(pkg, "./examples/"), func(t *testing.T) {
			out, err := exec.Command("go", "run", pkg).CombinedOutput()
			if err != nil {
				t.Fatalf("%s: %v\n%s", pkg, err, out)
			}
			if !strings.Contains(string(out), want) {
				t.Errorf("%s output missing %q:\n%s", pkg, want, out)
			}
		})
	}
	// densefilter runs a sweep over 50k-vertex graphs; keep it out of the
	// default test budget but verify it compiles.
	if out, err := exec.Command("go", "build", "-o", t.TempDir()+"/densefilter", "./examples/densefilter").CombinedOutput(); err != nil {
		t.Fatalf("densefilter does not build: %v\n%s", err, out)
	}
}
