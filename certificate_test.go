package bicc

import (
	"testing"
	"testing/quick"
)

func TestSparseCertificateSize(t *testing.T) {
	g := DenseGraph(80, 0.8, 1) // ~2500 edges over 80 vertices
	cert, edgeMap, err := SparseCertificate(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	if cert.NumVertices() != g.NumVertices() {
		t.Errorf("vertex count changed: %d", cert.NumVertices())
	}
	if max := 2 * (g.NumVertices() - 1); cert.NumEdges() > max {
		t.Errorf("certificate has %d edges, bound is %d", cert.NumEdges(), max)
	}
	if len(edgeMap) != cert.NumEdges() {
		t.Errorf("edgeMap len=%d, edges=%d", len(edgeMap), cert.NumEdges())
	}
	for j, e := range cert.Edges() {
		orig := g.Edges()[edgeMap[j]]
		if e != orig {
			t.Errorf("edge %d: %v mapped to %v", j, e, orig)
		}
	}
}

func TestSparseCertificatePreservesStructure(t *testing.T) {
	f := func(seed int64, nn, mm uint8) bool {
		n := int(nn%50) + 2
		maxM := n * (n - 1) / 2
		m := int(mm) % (maxM + 1)
		g, err := RandomGraph(n, m, seed)
		if err != nil {
			return false
		}
		cert, _, err := SparseCertificate(g, &Options{Procs: 2})
		if err != nil {
			return false
		}
		full, err := BiconnectedComponents(g, &Options{Algorithm: Sequential})
		if err != nil {
			return false
		}
		sub, err := BiconnectedComponents(cert, &Options{Algorithm: Sequential})
		if err != nil {
			return false
		}
		// Same number of blocks, same articulation points.
		if full.NumComponents != sub.NumComponents {
			return false
		}
		fa, sa := full.ArticulationPoints(), sub.ArticulationPoints()
		if len(fa) != len(sa) {
			return false
		}
		for i := range fa {
			if fa[i] != sa[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

func TestSparseCertificateSparseIdentity(t *testing.T) {
	// A graph that already has < 2(n-1) essential edges survives unchanged.
	g := ChainGraph(30)
	cert, _, err := SparseCertificate(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	if cert.NumEdges() != g.NumEdges() {
		t.Errorf("chain certificate has %d edges, want %d", cert.NumEdges(), g.NumEdges())
	}
	if _, _, err := SparseCertificate(nil, nil); err == nil {
		t.Error("nil graph accepted")
	}
}
