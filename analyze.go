package bicc

import (
	"bicc/internal/graph"
	"bicc/internal/par"
)

// Stats summarizes a graph's structure. Diameter matters to TV-filter: the
// paper's §4 bound is O(d + log n) time, with the BFS tree paying one
// synchronization round per level.
type Stats struct {
	Vertices  int
	Edges     int
	MinDegree int
	MaxDegree int
	MeanDeg   float64
	Isolated  int
	Connected bool
	// DiameterLB is the two-sweep BFS lower bound on the diameter (exact
	// on trees, tight in practice).
	DiameterLB int
}

// Analyze computes summary statistics with the given worker count
// (0 = GOMAXPROCS).
func Analyze(g *Graph, procs int) Stats {
	p := par.Procs(procs)
	_, ds := graph.Degrees(p, g.el)
	st := Stats{
		Vertices:  g.NumVertices(),
		Edges:     g.NumEdges(),
		MinDegree: int(ds.Min),
		MaxDegree: int(ds.Max),
		MeanDeg:   ds.Mean,
		Isolated:  ds.Isolated,
		Connected: graph.IsConnected(p, g.el),
	}
	if g.NumVertices() > 0 {
		st.DiameterLB = int(graph.DiameterTwoSweep(p, g.el, 0))
	}
	return st
}

// Diameter computes the exact diameter (one BFS per vertex — use on
// analysis-sized graphs; Analyze's two-sweep bound scales to paper-sized
// instances).
func Diameter(g *Graph, procs int) int {
	return int(graph.Diameter(par.Procs(procs), g.el))
}
