package bicc

import (
	"bicc/internal/core"
	"bicc/internal/graph"
)

// BlockCutTree is the bipartite forest over the blocks and cut vertices of
// a graph: each cut vertex is linked to every block containing it. It is
// the standard structure for fault-tolerance analysis and augmentation
// planning.
type BlockCutTree struct {
	t *core.BlockCutTree
}

// BlockCutTree assembles the block-cut tree of the decomposition.
func (r *Result) BlockCutTree() *BlockCutTree {
	return &BlockCutTree{t: core.NewBlockCutTree(r.g, r.EdgeComponent, r.NumComponents)}
}

// NumBlocks returns the number of block nodes.
func (t *BlockCutTree) NumBlocks() int { return t.t.NumBlocks }

// CutVertices returns the cut vertices, ascending.
func (t *BlockCutTree) CutVertices() []int32 { return t.t.Cuts }

// BlocksOfVertex returns the block ids containing v, ascending (more than
// one exactly when v is a cut vertex; empty for isolated vertices).
func (t *BlockCutTree) BlocksOfVertex(v int32) []int32 { return t.t.VertexBlocks[v] }

// VerticesOfBlock returns all vertices of block b, ascending.
func (t *BlockCutTree) VerticesOfBlock(b int32) []int32 { return t.t.BlockVertices[b] }

// CutsOfBlock returns the cut vertices on block b's boundary, ascending.
func (t *BlockCutTree) CutsOfBlock(b int32) []int32 { return t.t.BlockCuts[b] }

// LeafBlocks returns blocks incident to at most one cut vertex — the
// periphery of the tree, the natural endpoints for augmentation links.
func (t *BlockCutTree) LeafBlocks() []int32 { return t.t.LeafBlocks() }

// NumNodes returns blocks + cut vertices.
func (t *BlockCutTree) NumNodes() int { return t.t.NumNodes() }

// NumTreeEdges returns the number of block–cut incidences.
func (t *BlockCutTree) NumTreeEdges() int { return t.t.NumTreeEdges() }

// CountBlocks returns only the number of biconnected components of g,
// skipping the per-edge labeling — the cheapest way to answer "how many
// blocks?" or "is this biconnected?".
func CountBlocks(g *Graph, opt *Options) (int, error) {
	if g == nil {
		return 0, ErrNilGraph
	}
	procs := 0
	if opt != nil {
		procs = opt.Procs
	}
	return core.CountBlocks(procs, g.el)
}

// ComponentSubgraph extracts block k as a standalone graph with compact
// vertex ids. vertexMap[i] gives the original id of the subgraph's vertex
// i, and edgeMap[j] the original index of its edge j. Planarity testers and
// per-block analyses consume blocks in this form.
func (r *Result) ComponentSubgraph(k int32) (sub *Graph, vertexMap, edgeMap []int32) {
	local := map[int32]int32{}
	var edges []Edge
	for i, c := range r.EdgeComponent {
		if c != k {
			continue
		}
		e := r.g.Edges[i]
		for _, v := range [2]int32{e.U, e.V} {
			if _, ok := local[v]; !ok {
				local[v] = int32(len(vertexMap))
				vertexMap = append(vertexMap, v)
			}
		}
		edges = append(edges, Edge{U: local[e.U], V: local[e.V]})
		edgeMap = append(edgeMap, int32(i))
	}
	el := &graph.EdgeList{N: int32(len(vertexMap)), Edges: edges}
	return &Graph{el: el}, vertexMap, edgeMap
}
