package main

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildTool compiles one of the repository's commands into dir and returns
// the binary path.
func buildTool(t *testing.T, dir, pkg string) string {
	t.Helper()
	bin := filepath.Join(dir, filepath.Base(pkg))
	cmd := exec.Command("go", "build", "-o", bin, pkg)
	cmd.Dir = "../.." // module root
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building %s: %v\n%s", pkg, err, out)
	}
	return bin
}

func TestCLIEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	dir := t.TempDir()
	bcc := buildTool(t, dir, "./cmd/bcc")
	bccgen := buildTool(t, dir, "./cmd/bccgen")

	// Generate a mesh in each format and decompose it with each algorithm.
	for _, format := range []string{"text", "dimacs", "binary"} {
		gen := exec.Command(bccgen, "-family", "mesh", "-rows", "6", "-cols", "7", "-format", format)
		graphBytes, err := gen.Output()
		if err != nil {
			t.Fatalf("bccgen %s: %v", format, err)
		}
		for _, algo := range []string{"auto", "sequential", "tv-smp", "tv-opt", "tv-filter"} {
			run := exec.Command(bcc, "-format", format, "-algo", algo, "-timing", "-stats")
			run.Stdin = bytes.NewReader(graphBytes)
			out, err := run.Output()
			if err != nil {
				t.Fatalf("bcc -format %s -algo %s: %v", format, algo, err)
			}
			s := string(out)
			if !strings.Contains(s, "graph: 42 vertices, 71 edges") {
				t.Errorf("%s/%s: unexpected header in:\n%s", format, algo, s)
			}
			if !strings.Contains(s, "biconnected components: 1") {
				t.Errorf("%s/%s: mesh should be one block:\n%s", format, algo, s)
			}
			if !strings.Contains(s, "articulation points: 0") {
				t.Errorf("%s/%s: mesh has no cut vertices:\n%s", format, algo, s)
			}
		}
	}

	// A chain via a file argument, with -components.
	chain := exec.Command(bccgen, "-family", "chain", "-n", "5")
	chainBytes, err := chain.Output()
	if err != nil {
		t.Fatal(err)
	}
	file := filepath.Join(dir, "chain.txt")
	if err := writeFile(file, chainBytes); err != nil {
		t.Fatal(err)
	}
	out, err := exec.Command(bcc, "-components", file).Output()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(out), "biconnected components: 4") {
		t.Errorf("chain output:\n%s", out)
	}
	if c := strings.Count(string(out), "block "); c != 4 {
		t.Errorf("printed %d blocks, want 4:\n%s", c, out)
	}

	// Malformed input must fail loudly.
	bad := exec.Command(bcc)
	bad.Stdin = strings.NewReader("not a graph\n")
	if err := bad.Run(); err == nil {
		t.Error("bcc accepted malformed input")
	}
	// Unknown algorithm must fail.
	if err := exec.Command(bcc, "-algo", "bogus", file).Run(); err == nil {
		t.Error("bcc accepted unknown algorithm")
	}
	// Unknown generator family must fail.
	if err := exec.Command(bccgen, "-family", "bogus").Run(); err == nil {
		t.Error("bccgen accepted unknown family")
	}
}

func TestCLIVerifyAndBench(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	dir := t.TempDir()
	verify := buildTool(t, dir, "./cmd/bccverify")
	out, err := exec.Command(verify, "-trials", "15", "-maxn", "60").Output()
	if err != nil {
		t.Fatalf("bccverify: %v", err)
	}
	if !strings.Contains(string(out), "OK: 15 trials") {
		t.Errorf("bccverify output:\n%s", out)
	}

	benchBin := buildTool(t, dir, "./cmd/bccbench")
	csvPath := filepath.Join(dir, "fig3.csv")
	out, err = exec.Command(benchBin, "-scale", "0.002", "-maxprocs", "2", "-reps", "1", "-csv", csvPath).Output()
	if err != nil {
		t.Fatalf("bccbench: %v", err)
	}
	for _, want := range []string{"tv-filter", "speedup"} {
		if !strings.Contains(string(out), want) {
			t.Errorf("bccbench output missing %q", want)
		}
	}
	csvBytes, err := readFile(csvPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(csvBytes), "instance,n,m,algorithm,procs,seconds,speedup") {
		t.Errorf("csv header: %s", bytes.SplitN(csvBytes, []byte("\n"), 2)[0])
	}

	breakdown := buildTool(t, dir, "./cmd/bccbreakdown")
	out, err = exec.Command(breakdown, "-scale", "0.002", "-p", "2", "-reps", "1").Output()
	if err != nil {
		t.Fatalf("bccbreakdown: %v", err)
	}
	for _, want := range []string{"spanning-tree", "filtering", "total"} {
		if !strings.Contains(string(out), want) {
			t.Errorf("bccbreakdown output missing %q", want)
		}
	}
}

func writeFile(path string, data []byte) error { return os.WriteFile(path, data, 0o644) }
func readFile(path string) ([]byte, error)     { return os.ReadFile(path) }
