// Command bcc computes the biconnected components of a graph read from a
// file (or stdin) in the textual edge-list format and reports the block
// decomposition, articulation points, and bridges.
//
// Usage:
//
//	bcc [-algo auto|sequential|tv-smp|tv-opt|tv-filter|fast-bcc] [-p procs]
//	    [-format text|dimacs|binary] [-components] [-timing] [graphfile]
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"time"

	"bicc"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("bcc: ")
	algoName := flag.String("algo", "auto", "algorithm: auto, sequential, tv-smp, tv-opt, tv-filter, fast-bcc")
	procs := flag.Int("p", 0, "worker count (0 = GOMAXPROCS)")
	format := flag.String("format", "text", "input format: text, dimacs, binary")
	showComps := flag.Bool("components", false, "print every block's edge list")
	showTiming := flag.Bool("timing", false, "print the per-step timing breakdown")
	showStats := flag.Bool("stats", false, "print graph statistics (degrees, connectivity, diameter bound)")
	flag.Parse()

	algo, err := bicc.ParseAlgorithm(*algoName)
	if err != nil {
		log.Fatal(err)
	}
	var in io.Reader = os.Stdin
	if flag.NArg() > 0 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		in = f
	}
	var g *bicc.Graph
	switch *format {
	case "text":
		g, err = bicc.ReadGraph(in)
	case "dimacs":
		g, err = bicc.ReadGraphDIMACS(in)
	case "binary":
		g, err = bicc.ReadGraphBinary(in)
	default:
		log.Fatalf("unknown format %q", *format)
	}
	if err != nil {
		log.Fatal(err)
	}
	res, err := bicc.BiconnectedComponents(g, &bicc.Options{Algorithm: algo, Procs: *procs})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("graph: %d vertices, %d edges\n", g.NumVertices(), g.NumEdges())
	if *showStats {
		st := bicc.Analyze(g, *procs)
		fmt.Printf("degrees: min=%d max=%d mean=%.2f isolated=%d\n",
			st.MinDegree, st.MaxDegree, st.MeanDeg, st.Isolated)
		fmt.Printf("connected: %v, diameter >= %d\n", st.Connected, st.DiameterLB)
	}
	fmt.Printf("algorithm: %v\n", res.Algorithm)
	fmt.Printf("biconnected components: %d\n", res.NumComponents)
	cuts := res.ArticulationPoints()
	fmt.Printf("articulation points: %d", len(cuts))
	if len(cuts) > 0 && len(cuts) <= 32 {
		fmt.Printf(" %v", cuts)
	}
	fmt.Println()
	bridges := res.Bridges()
	fmt.Printf("bridges: %d", len(bridges))
	if len(bridges) > 0 && len(bridges) <= 32 {
		fmt.Printf(" %v", bridges)
	}
	fmt.Println()
	if *showComps {
		edges := g.Edges()
		for k, comp := range res.Components() {
			fmt.Printf("block %d (%d edges):", k, len(comp))
			for _, i := range comp {
				fmt.Printf(" (%d,%d)", edges[i].U, edges[i].V)
			}
			fmt.Println()
		}
	}
	if *showTiming {
		for _, ph := range res.Phases {
			fmt.Printf("%-22s %v\n", ph.Name, ph.Duration.Round(time.Microsecond))
		}
	}
}
