// Bit-rot chaos harness: runs bccd as a subprocess, flips real bytes on
// disk in each durable tier (WAL, snapshot, result spill, shard blobs) or
// corrupts the replication retention ring via fault injection, triggers a
// scrub cycle over the admin endpoint, and asserts the self-healing
// contract: damage is detected within one cycle, repaired from the cheapest
// healthy source, and query answers afterward are byte-identical to the
// answers before the damage. What cannot be repaired must land in
// quarantine and flip /healthz.
package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"bicc"
	"bicc/internal/gen"
)

// scrubReport mirrors the admin endpoint's cycle report.
type scrubReport struct {
	Checked     int   `json:"checked"`
	Corrupt     int   `json:"corrupt"`
	Repaired    int   `json:"repaired"`
	Quarantined int   `json:"quarantined"`
	Bytes       int64 `json:"bytes"`
	Tiers       []struct {
		Tier        string   `json:"tier"`
		Listed      int      `json:"listed"`
		Checked     int      `json:"checked"`
		Corrupt     int      `json:"corrupt"`
		Repaired    int      `json:"repaired"`
		Quarantined int      `json:"quarantined"`
		Errors      []string `json:"errors"`
	} `json:"tiers"`
}

// runScrub triggers one synchronous scrub cycle on p.
func runScrub(t *testing.T, p *bccdProc) scrubReport {
	t.Helper()
	resp, err := http.Post(p.url("/v1/admin/scrub"), "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("admin scrub: status %d: %s", resp.StatusCode, body)
	}
	var rep scrubReport
	if err := json.Unmarshal(body, &rep); err != nil {
		t.Fatal(err)
	}
	return rep
}

// tierOf plucks one tier out of a scrub report.
func (r scrubReport) tierOf(t *testing.T, name string) (tier struct {
	Tier        string   `json:"tier"`
	Listed      int      `json:"listed"`
	Checked     int      `json:"checked"`
	Corrupt     int      `json:"corrupt"`
	Repaired    int      `json:"repaired"`
	Quarantined int      `json:"quarantined"`
	Errors      []string `json:"errors"`
}) {
	t.Helper()
	for _, tr := range r.Tiers {
		if tr.Tier == name {
			return tr
		}
	}
	t.Fatalf("tier %q missing from scrub report %+v", name, r)
	return
}

// canonicalAnswer posts one include-free BCC query and returns the response
// body with the volatile fields (timings, trace, cache provenance) zeroed,
// so two answers can be compared byte for byte.
func canonicalAnswer(t *testing.T, p *bccdProc, fp, algo string) []byte {
	t.Helper()
	body := fmt.Sprintf(`{"graph": %q, "algorithm": %q}`, fp, algo)
	resp, err := http.Post(p.url("/v1/bcc"), "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query %s/%s: status %d: %s", fp, algo, resp.StatusCode, data)
	}
	var m map[string]any
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatal(err)
	}
	for _, volatile := range []string{"elapsed_ns", "phases", "trace", "cached"} {
		delete(m, volatile)
	}
	out, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// flipOnDisk corrupts one byte of path in place, past the 6-byte codec file
// header so the frame CRC is what must catch it.
func flipOnDisk(t *testing.T, path string, off int) {
	t.Helper()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if off >= len(b) {
		off = len(b) - 1
	}
	b[off] ^= 0x10
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
}

// globOne returns the single path matching pattern, failing otherwise.
func globOne(t *testing.T, pattern string) string {
	t.Helper()
	paths, err := filepath.Glob(pattern)
	if err != nil || len(paths) == 0 {
		t.Fatalf("glob %s: %v %v", pattern, paths, err)
	}
	return paths[0]
}

// healthz fetches /healthz, returning the status code and decoded body.
func healthz(t *testing.T, p *bccdProc) (int, map[string]any) {
	t.Helper()
	resp, err := http.Get(p.url("/healthz"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var m map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, m
}

// TestBitRotWALTierHeals flips a byte inside the live WAL segment: one scrub
// cycle must detect it and heal by compaction, queries must answer
// byte-identically, and a cold restart over the healed directory must
// recover every graph.
func TestBitRotWALTierHeals(t *testing.T) {
	dir := t.TempDir()
	p := startBccd(t, dir, "")
	g1, _ := crashGraph(t, 1)
	g2, _ := crashGraph(t, 2)
	fp1, err := p.upload(g1)
	if err != nil {
		t.Fatal(err)
	}
	fp2, err := p.upload(g2)
	if err != nil {
		t.Fatal(err)
	}
	before := canonicalAnswer(t, p, fp1, "tv-smp")

	flipOnDisk(t, globOne(t, filepath.Join(dir, "wal-*.log")), 10)
	rep := runScrub(t, p)
	if tr := rep.tierOf(t, "wal"); tr.Corrupt != 1 || tr.Repaired != 1 {
		t.Fatalf("wal tier after bit-rot = %+v, want 1 corrupt, 1 repaired; stderr:\n%s", tr, p.stderr())
	}
	if rep := runScrub(t, p); rep.Corrupt != 0 {
		t.Fatalf("second cycle still corrupt: %+v", rep)
	}
	after := canonicalAnswer(t, p, fp1, "tv-smp")
	if string(before) != string(after) {
		t.Fatalf("answer changed across WAL repair:\n%s\n%s", before, after)
	}
	if code, _ := healthz(t, p); code != http.StatusOK {
		t.Fatalf("healthz after clean repair: %d", code)
	}

	// The healed directory is a valid recovery image.
	if err := p.cmd.Process.Signal(os.Interrupt); err != nil {
		t.Fatal(err)
	}
	p.waitExit()
	p2 := startBccd(t, dir, "")
	graphs, err := p2.graphs()
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := graphs[fp1]; !ok {
		t.Fatalf("graph %s lost after repair+restart", fp1)
	}
	if _, ok := graphs[fp2]; !ok {
		t.Fatalf("graph %s lost after repair+restart", fp2)
	}
}

// TestBitRotSnapshotTierHeals compacts so a snapshot generation exists on
// disk, rots it, and proves scrub + restart still serve every graph.
func TestBitRotSnapshotTierHeals(t *testing.T) {
	dir := t.TempDir()
	// A tiny compaction threshold so the uploads immediately produce a
	// snapshot generation.
	p := startBccd(t, dir, "", "-compact-bytes", "256")
	g1, _ := crashGraph(t, 3)
	fp1, err := p.upload(g1)
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(20 * time.Second)
	for {
		if paths, _ := filepath.Glob(filepath.Join(dir, "snap-*.bin")); len(paths) > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("compaction never produced a snapshot; stderr:\n%s", p.stderr())
		}
		time.Sleep(20 * time.Millisecond)
	}
	before := canonicalAnswer(t, p, fp1, "tv-opt")

	flipOnDisk(t, globOne(t, filepath.Join(dir, "snap-*.bin")), 10)
	rep := runScrub(t, p)
	tr := rep.tierOf(t, "wal") // snapshots are walked by the wal tier
	if tr.Corrupt < 1 || tr.Repaired < 1 {
		t.Fatalf("wal tier after snapshot rot = %+v; stderr:\n%s", tr, p.stderr())
	}
	if rep := runScrub(t, p); rep.Corrupt != 0 {
		t.Fatalf("second cycle still corrupt: %+v", rep)
	}
	after := canonicalAnswer(t, p, fp1, "tv-opt")
	if string(before) != string(after) {
		t.Fatalf("answer changed across snapshot repair:\n%s\n%s", before, after)
	}

	if err := p.cmd.Process.Signal(os.Interrupt); err != nil {
		t.Fatal(err)
	}
	p.waitExit()
	p2 := startBccd(t, dir, "", "-compact-bytes", "256")
	graphs, err := p2.graphs()
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := graphs[fp1]; !ok {
		t.Fatalf("graph %s lost after snapshot repair+restart", fp1)
	}
}

// TestBitRotSpillTierHeals demotes a result to the disk spill, rots the
// spill file, and proves the scrubber recomputes it — the re-queried answer
// is byte-identical to the pre-damage one.
func TestBitRotSpillTierHeals(t *testing.T) {
	dir := t.TempDir()
	// One cache entry: the second query demotes the first result to disk.
	p := startBccd(t, dir, "", "-cache", "1")
	g1, _ := crashGraph(t, 4)
	g2, _ := crashGraph(t, 5)
	fp1, err := p.upload(g1)
	if err != nil {
		t.Fatal(err)
	}
	fp2, err := p.upload(g2)
	if err != nil {
		t.Fatal(err)
	}
	before := canonicalAnswer(t, p, fp1, "fast-bcc")
	canonicalAnswer(t, p, fp2, "fast-bcc") // evicts fp1's entry → spill file

	flipOnDisk(t, globOne(t, filepath.Join(dir, "spill", "*.res")), 20)
	rep := runScrub(t, p)
	if tr := rep.tierOf(t, "spill"); tr.Corrupt != 1 || tr.Repaired != 1 {
		t.Fatalf("spill tier after bit-rot = %+v; stderr:\n%s", tr, p.stderr())
	}
	if rep := runScrub(t, p); rep.Corrupt != 0 {
		t.Fatalf("second cycle still corrupt: %+v", rep)
	}
	after := canonicalAnswer(t, p, fp1, "fast-bcc")
	if string(before) != string(after) {
		t.Fatalf("answer changed across spill repair:\n%s\n%s", before, after)
	}
}

// TestBitRotShardTierHeals demotes shard blobs to disk under a tiny shard
// budget, rots one, and proves the scrubber rebuilds the set with block
// queries answering identically.
func TestBitRotShardTierHeals(t *testing.T) {
	dir := t.TempDir()
	p := startBccd(t, dir, "", "-shard", "-shard-budget", "2000")
	el := gen.Caterpillar(16, 3)
	g, err := bicc.NewGraph(int(el.N), el.Edges)
	if err != nil {
		t.Fatal(err)
	}
	fp, err := p.upload(g)
	if err != nil {
		t.Fatal(err)
	}
	blockAnswers := func() []string {
		var out []string
		for b := 0; ; b++ {
			resp, err := http.Get(p.url(fmt.Sprintf("/v1/block/%d?graph=%s", b, fp)))
			if err != nil {
				t.Fatal(err)
			}
			body, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusNotFound {
				return out
			}
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("block %d: status %d: %s", b, resp.StatusCode, body)
			}
			var m map[string]any
			if err := json.Unmarshal(body, &m); err != nil {
				t.Fatal(err)
			}
			delete(m, "elapsed_ns")
			norm, _ := json.Marshal(m)
			out = append(out, string(norm))
		}
	}
	before := blockAnswers() // also demotes blobs under the tiny budget
	if paths, _ := filepath.Glob(filepath.Join(dir, "shards", "*.blob")); len(paths) == 0 {
		t.Fatalf("no shard blobs demoted to disk; cannot exercise the tier")
	}

	flipOnDisk(t, globOne(t, filepath.Join(dir, "shards", "*.blob")), 10)
	rep := runScrub(t, p)
	if tr := rep.tierOf(t, "shard"); tr.Corrupt != 1 || tr.Repaired != 1 {
		t.Fatalf("shard tier after bit-rot = %+v; stderr:\n%s", tr, p.stderr())
	}
	if rep := runScrub(t, p); rep.Corrupt != 0 {
		t.Fatalf("second cycle still corrupt: %+v", rep)
	}
	after := blockAnswers()
	if len(before) != len(after) {
		t.Fatalf("block count changed: %d vs %d", len(before), len(after))
	}
	for i := range before {
		if before[i] != after[i] {
			t.Fatalf("block %d answer changed:\n%s\n%s", i, before[i], after[i])
		}
	}
}

// TestBitRotRingTierTruncatesAndResyncs corrupts the primary's retention
// ring via the repl.ring injection site: the scrub must truncate retention,
// and a standby that then connects behind the new floor must converge via
// snapshot resync with byte-identical answers.
func TestBitRotRingTierTruncatesAndResyncs(t *testing.T) {
	dirP, dirS := t.TempDir(), t.TempDir()
	pri := startBccd(t, dirP, "corrupt,site=repl.ring,count=1", "-repl-listen", "127.0.0.1:0")
	g1, _ := crashGraph(t, 6)
	fp, err := pri.upload(g1)
	if err != nil {
		t.Fatal(err)
	}
	before := canonicalAnswer(t, pri, fp, "tv-filter")

	rep := runScrub(t, pri)
	tr := rep.tierOf(t, "ring")
	if tr.Corrupt != 1 || tr.Repaired != 1 {
		t.Fatalf("ring tier = %+v, want 1 corrupt repaired by truncation; stderr:\n%s", tr, pri.stderr())
	}
	if rep := runScrub(t, pri); rep.Corrupt != 0 {
		t.Fatalf("second cycle still corrupt: %+v", rep)
	}

	// A standby starting from nothing sits behind the truncated floor: the
	// snapshot-resync path is its repair. It must converge on the graphs.
	stb := startBccd(t, dirS, "", "-repl-follow", pri.replAddr())
	deadline := time.Now().Add(30 * time.Second)
	for {
		graphs, err := stb.graphs()
		if err == nil {
			if _, ok := graphs[fp]; ok {
				break
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("standby never converged; stderr:\n%s", stb.stderr())
		}
		time.Sleep(50 * time.Millisecond)
	}
	afterStb := canonicalAnswer(t, stb, fp, "tv-filter")
	if string(before) != string(afterStb) {
		t.Fatalf("standby answer differs from primary's pre-damage answer:\n%s\n%s", before, afterStb)
	}
}

// TestBitRotUnrepairableQuarantines plants an artifact no source can
// rebuild (a stray spill file for a graph the daemon never saw): the scrub
// must quarantine it and /healthz must go unhealthy until an operator
// clears the quarantine directory.
func TestBitRotUnrepairableQuarantines(t *testing.T) {
	dir := t.TempDir()
	p := startBccd(t, dir, "")
	g1, _ := crashGraph(t, 7)
	if _, err := p.upload(g1); err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll(filepath.Join(dir, "spill"), 0o755); err != nil {
		t.Fatal(err)
	}
	stray := filepath.Join(dir, "spill", "stray-key.res")
	if err := os.WriteFile(stray, []byte("rotten beyond recognition"), 0o644); err != nil {
		t.Fatal(err)
	}

	rep := runScrub(t, p)
	if tr := rep.tierOf(t, "spill"); tr.Corrupt != 1 || tr.Quarantined != 1 {
		t.Fatalf("spill tier = %+v, want the stray quarantined; stderr:\n%s", tr, p.stderr())
	}
	if _, err := os.Stat(stray); !os.IsNotExist(err) {
		t.Fatal("stray still in the spill directory")
	}
	if _, err := os.Stat(filepath.Join(dir, "quarantine", "stray-key.res")); err != nil {
		t.Fatalf("stray not moved to quarantine: %v", err)
	}
	code, body := healthz(t, p)
	if code != http.StatusServiceUnavailable || body["status"] != "unhealthy" {
		t.Fatalf("healthz after quarantine: %d %v, want 503 unhealthy", code, body)
	}
	if q, ok := body["quarantined"].([]any); !ok || len(q) != 1 {
		t.Fatalf("healthz quarantined = %v", body["quarantined"])
	}

	// Operator clears the quarantine; a restart comes back healthy.
	if err := p.cmd.Process.Signal(os.Interrupt); err != nil {
		t.Fatal(err)
	}
	p.waitExit()
	if err := os.RemoveAll(filepath.Join(dir, "quarantine")); err != nil {
		t.Fatal(err)
	}
	p2 := startBccd(t, dir, "")
	if code, _ := healthz(t, p2); code != http.StatusOK {
		t.Fatalf("healthz after operator clear: %d", code)
	}
}
