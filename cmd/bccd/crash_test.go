// Kill-and-restart chaos harness: runs bccd as a subprocess, SIGKILLs it
// at fault-injected points inside the durable write paths (via BICC_FAULTS
// with the kill kind), restarts over the same data directory, and asserts
// the durability contract: every acknowledged write is recovered with its
// content fingerprint intact, and a record torn mid-write is cleanly
// truncated away.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"bicc"
	"bicc/internal/service"
)

// TestMain lets this test binary double as the bccd executable: the
// harness re-execs itself with BCCD_CHILD=1 and daemon flags, so the
// subprocess under test is always the code being tested — no stale
// installed binary, no build step.
func TestMain(m *testing.M) {
	if os.Getenv("BCCD_CHILD") == "1" {
		main()
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// bccdProc is one bccd subprocess plus its captured stderr.
type bccdProc struct {
	t    *testing.T
	cmd  *exec.Cmd
	addr string

	mu    sync.Mutex
	lines []string
}

// startBccd launches the daemon on a kernel-chosen port over dir, with an
// optional BICC_FAULTS spec, and waits for the listen line.
func startBccd(t *testing.T, dir, faults string, extra ...string) *bccdProc {
	t.Helper()
	args := append([]string{"-addr", "127.0.0.1:0", "-data-dir", dir, "-workers", "2"}, extra...)
	cmd := exec.Command(os.Args[0], args...)
	cmd.Env = append(os.Environ(), "BCCD_CHILD=1", "BICC_FAULTS="+faults)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	p := &bccdProc{t: t, cmd: cmd}
	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			line := sc.Text()
			p.mu.Lock()
			p.lines = append(p.lines, line)
			p.mu.Unlock()
			if i := strings.Index(line, "listening on "); i >= 0 {
				select {
				case addrCh <- strings.TrimSpace(line[i+len("listening on "):]):
				default:
				}
			}
		}
	}()
	select {
	case p.addr = <-addrCh:
	case <-time.After(30 * time.Second):
		_ = cmd.Process.Kill()
		t.Fatalf("bccd did not report a listen address; stderr:\n%s", p.stderr())
	}
	t.Cleanup(func() {
		if cmd.ProcessState == nil {
			_ = cmd.Process.Kill()
			_, _ = cmd.Process.Wait()
		}
	})
	return p
}

func (p *bccdProc) stderr() string {
	p.mu.Lock()
	defer p.mu.Unlock()
	return strings.Join(p.lines, "\n")
}

// waitExit blocks until the subprocess exits, failing the test on timeout.
func (p *bccdProc) waitExit() *os.ProcessState {
	p.t.Helper()
	done := make(chan error, 1)
	go func() { done <- p.cmd.Wait() }()
	select {
	case <-done:
		return p.cmd.ProcessState
	case <-time.After(30 * time.Second):
		_ = p.cmd.Process.Kill()
		p.t.Fatalf("bccd did not exit; stderr:\n%s", p.stderr())
		return nil
	}
}

func (p *bccdProc) url(path string) string { return "http://" + p.addr + path }

// upload posts g in binary format and returns the fingerprint, or an error
// when the daemon died mid-request (the expected outcome at a kill site).
func (p *bccdProc) upload(g *bicc.Graph) (string, error) {
	var buf bytes.Buffer
	if err := bicc.WriteGraphBinary(&buf, g); err != nil {
		return "", err
	}
	resp, err := http.Post(p.url("/v1/graphs?format=binary"), "application/octet-stream", &buf)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("status %d: %s", resp.StatusCode, body)
	}
	var out struct {
		Fingerprint string `json:"fingerprint"`
	}
	if err := json.Unmarshal(body, &out); err != nil {
		return "", err
	}
	return out.Fingerprint, nil
}

// graphs fetches the resident graph listing keyed by fingerprint.
func (p *bccdProc) graphs() (map[string]struct{ Vertices, Edges int }, error) {
	resp, err := http.Get(p.url("/v1/graphs"))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var out struct {
		Graphs []struct {
			Fingerprint string `json:"fingerprint"`
			Vertices    int    `json:"vertices"`
			Edges       int    `json:"edges"`
		} `json:"graphs"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, err
	}
	m := map[string]struct{ Vertices, Edges int }{}
	for _, g := range out.Graphs {
		m[g.Fingerprint] = struct{ Vertices, Edges int }{g.Vertices, g.Edges}
	}
	return m, nil
}

// durStats fetches the /statsz durability section.
func (p *bccdProc) durStats() (map[string]float64, error) {
	resp, err := http.Get(p.url("/statsz"))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var out struct {
		Durability map[string]float64 `json:"durability"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, err
	}
	if out.Durability == nil {
		return nil, fmt.Errorf("no durability section in /statsz")
	}
	return out.Durability, nil
}

// query posts one BCC request on the chosen engine; the error is returned
// so kill-site tests can tolerate the daemon dying mid-query.
func (p *bccdProc) query(fp, algo string) error {
	body := fmt.Sprintf(`{"graph": %q, "algorithm": %q}`, fp, algo)
	resp, err := http.Post(p.url("/v1/bcc"), "application/json", strings.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("status %d: %s", resp.StatusCode, data)
	}
	return nil
}

// crashGraph builds the i-th deterministic test graph; the parent computes
// the expected fingerprint with the same code the daemon uses.
func crashGraph(t *testing.T, i int) (*bicc.Graph, string) {
	t.Helper()
	g, err := bicc.RandomConnectedGraph(60, 140, int64(1000+i))
	if err != nil {
		t.Fatal(err)
	}
	return g, service.Fingerprint(g)
}

// TestCrashAtWALSites SIGKILLs the daemon at each WAL fault site during
// the fourth upload and asserts: the three acknowledged graphs always come
// back fingerprint-identical; the torn-record site (killed between frame
// header and payload) additionally loses the unacknowledged upload and is
// repaired by truncation, while the post-payload sites leave a complete
// record behind (at-least-once, never lost-after-ack).
func TestCrashAtWALSites(t *testing.T) {
	cases := []struct {
		site     string
		wantTorn bool // unacked upload absent + WAL truncated at recovery
	}{
		{"durable.wal.header", true},
		{"durable.wal.payload", false},
		{"durable.wal.sync", false},
	}
	for _, tc := range cases {
		t.Run(tc.site, func(t *testing.T) {
			dir := t.TempDir()
			p := startBccd(t, dir, fmt.Sprintf("kill,site=%s,iter=3", tc.site))

			acked := map[string]struct{ Vertices, Edges int }{}
			for i := 0; i < 3; i++ {
				g, wantFP := crashGraph(t, i)
				fp, err := p.upload(g)
				if err != nil {
					t.Fatalf("upload %d: %v", i, err)
				}
				if fp != wantFP {
					t.Fatalf("upload %d: fp %s, want %s", i, fp, wantFP)
				}
				acked[fp] = struct{ Vertices, Edges int }{g.NumVertices(), g.NumEdges()}
			}
			g3, fp3 := crashGraph(t, 3)
			if _, err := p.upload(g3); err == nil {
				t.Fatal("upload 3 was acknowledged despite the kill site")
			}
			st := p.waitExit()
			if st.Success() {
				t.Fatalf("child exited cleanly, want SIGKILL: %s", p.stderr())
			}
			if !strings.Contains(p.stderr(), "faults: injected kill at "+tc.site) {
				t.Fatalf("kill did not fire at %s; stderr:\n%s", tc.site, p.stderr())
			}

			// Restart over the same directory, no faults.
			p2 := startBccd(t, dir, "")
			got, err := p2.graphs()
			if err != nil {
				t.Fatal(err)
			}
			for fp, want := range acked {
				g, ok := got[fp]
				if !ok {
					t.Fatalf("acknowledged graph %s lost after crash", fp)
				}
				if g != want {
					t.Fatalf("graph %s recovered as %+v, want %+v", fp, g, want)
				}
			}
			ds, err := p2.durStats()
			if err != nil {
				t.Fatal(err)
			}
			_, unackedPresent := got[fp3]
			if tc.wantTorn {
				if unackedPresent {
					t.Fatal("torn (unacknowledged) upload resurrected")
				}
				if ds["wal_truncations"] < 1 {
					t.Fatalf("torn tail not truncated: %v", ds)
				}
			} else {
				// Killed after the record bytes reached the kernel: SIGKILL
				// does not empty the page cache, so the complete record
				// survives and recovery needs no repair.
				if !unackedPresent {
					t.Fatal("complete record lost despite surviving the kill")
				}
				if ds["wal_truncations"] != 0 {
					t.Fatalf("unexpected truncation: %v", ds)
				}
			}
			if int(ds["recovered_graphs"]) != len(got) {
				t.Fatalf("recovered_graphs %v != listed %d", ds["recovered_graphs"], len(got))
			}
		})
	}
}

// TestCrashDuringCompaction kills the daemon inside snapshot compaction —
// once mid-snapshot-write, once just before the atomic rename — and
// asserts every acknowledged upload survives and the daemon stays
// writable after recovery.
func TestCrashDuringCompaction(t *testing.T) {
	cases := []struct{ site, spec string }{
		// iter at the write site is the record index inside the snapshot;
		// at the rename site it is the new generation (2 on the first
		// compaction).
		{"durable.snap.write", "kill,site=durable.snap.write,iter=0"},
		{"durable.snap.rename", "kill,site=durable.snap.rename,iter=2"},
	}
	for _, tc := range cases {
		site := tc.site
		t.Run(site, func(t *testing.T) {
			dir := t.TempDir()
			p := startBccd(t, dir, tc.spec, "-compact-bytes", "2048")

			acked := map[string]bool{}
			for i := 0; i < 40; i++ {
				g, _ := crashGraph(t, i)
				fp, err := p.upload(g)
				if err != nil {
					break // the background compaction killed the process
				}
				acked[fp] = true
			}
			st := p.waitExit()
			if st.Success() {
				t.Fatalf("child exited cleanly, want SIGKILL during compaction: %s", p.stderr())
			}
			if !strings.Contains(p.stderr(), "faults: injected kill at "+site) {
				t.Fatalf("kill did not fire at %s; stderr:\n%s", site, p.stderr())
			}
			if len(acked) < 2 {
				t.Fatalf("only %d uploads acknowledged before the kill", len(acked))
			}

			p2 := startBccd(t, dir, "")
			got, err := p2.graphs()
			if err != nil {
				t.Fatal(err)
			}
			for fp := range acked {
				if _, ok := got[fp]; !ok {
					t.Fatalf("acknowledged graph %s lost in compaction crash", fp)
				}
			}
			// Still writable: the active WAL generation is intact.
			g, _ := crashGraph(t, 99)
			if _, err := p2.upload(g); err != nil {
				t.Fatalf("upload after compaction recovery: %v", err)
			}
		})
	}
}

// TestCrashAtEngineKillSite SIGKILLs the daemon inside the fast-bcc engine
// (at the skeleton-construction fault site) while it serves a query. An
// engine kill must cost only the in-flight query: every acknowledged upload
// recovers from the WAL, and the restarted daemon answers the same fast-bcc
// query cleanly.
func TestCrashAtEngineKillSite(t *testing.T) {
	const site = "fastbcc.skeleton"
	dir := t.TempDir()
	p := startBccd(t, dir, "kill,site="+site+",iter=0")
	acked := map[string]struct{ Vertices, Edges int }{}
	for i := 0; i < 2; i++ {
		g, _ := crashGraph(t, i)
		fp, err := p.upload(g)
		if err != nil {
			t.Fatalf("upload %d: %v", i, err)
		}
		acked[fp] = struct{ Vertices, Edges int }{g.NumVertices(), g.NumEdges()}
	}
	_, fp0 := crashGraph(t, 0)
	if err := p.query(fp0, "fast-bcc"); err == nil {
		t.Fatal("fast-bcc query succeeded despite the engine kill site")
	}
	st := p.waitExit()
	if st.Success() {
		t.Fatalf("child exited cleanly, want SIGKILL inside the engine: %s", p.stderr())
	}
	if !strings.Contains(p.stderr(), "faults: injected kill at "+site) {
		t.Fatalf("kill did not fire at %s; stderr:\n%s", site, p.stderr())
	}

	p2 := startBccd(t, dir, "")
	got, err := p2.graphs()
	if err != nil {
		t.Fatal(err)
	}
	for fp, want := range acked {
		g, ok := got[fp]
		if !ok {
			t.Fatalf("acknowledged graph %s lost after engine kill", fp)
		}
		if g != want {
			t.Fatalf("graph %s recovered as %+v, want %+v", fp, g, want)
		}
	}
	if err := p2.query(fp0, "fast-bcc"); err != nil {
		t.Fatalf("fast-bcc query after recovery: %v", err)
	}
}

// TestCrashDuringSpillWrite kills the daemon mid-demotion: the torn spill
// file must be detected by CRC at the next boot and discarded, costing a
// recompute, never a wrong answer.
func TestCrashDuringSpillWrite(t *testing.T) {
	dir := t.TempDir()
	p := startBccd(t, dir, "kill,site=durable.spill.write,iter=0", "-cache", "1")
	g0, fp0 := crashGraph(t, 0)
	g1, fp1 := crashGraph(t, 1)
	for _, g := range []*bicc.Graph{g0, g1} {
		if _, err := p.upload(g); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.query(fp0, "tv-opt"); err != nil {
		t.Fatalf("first query: %v", err)
	}
	// Second distinct query demotes the first result → spill write → kill.
	_ = p.query(fp1, "tv-opt")
	st := p.waitExit()
	if st.Success() {
		t.Fatalf("child exited cleanly, want SIGKILL during spill write: %s", p.stderr())
	}

	p2 := startBccd(t, dir, "")
	ds, err := p2.durStats()
	if err != nil {
		t.Fatal(err)
	}
	if ds["spill_corrupt"] < 1 {
		t.Fatalf("torn spill file not dropped at boot: %v", ds)
	}
	// Both graphs recovered; the query whose cached result was torn simply
	// recomputes.
	if err := p2.query(fp0, "tv-opt"); err != nil {
		t.Fatalf("recompute after torn spill: %v", err)
	}
	if err := p2.query(fp1, "tv-opt"); err != nil {
		t.Fatalf("query after recovery: %v", err)
	}
}

// TestSIGTERMCleanStop is the drain test's durable leg: a graceful stop
// flushes and closes the WAL, so the next boot recovers everything with
// zero truncations and no repair.
func TestSIGTERMCleanStop(t *testing.T) {
	dir := t.TempDir()
	p := startBccd(t, dir, "")
	acked := map[string]bool{}
	for i := 0; i < 3; i++ {
		g, _ := crashGraph(t, i)
		fp, err := p.upload(g)
		if err != nil {
			t.Fatal(err)
		}
		acked[fp] = true
	}
	if err := p.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	st := p.waitExit()
	if !st.Success() {
		t.Fatalf("SIGTERM exit code %d; stderr:\n%s", st.ExitCode(), p.stderr())
	}

	p2 := startBccd(t, dir, "")
	got, err := p2.graphs()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(acked) {
		t.Fatalf("recovered %d graphs, want %d", len(got), len(acked))
	}
	for fp := range acked {
		if _, ok := got[fp]; !ok {
			t.Fatalf("graph %s lost across clean stop", fp)
		}
	}
	ds, err := p2.durStats()
	if err != nil {
		t.Fatal(err)
	}
	if ds["wal_truncations"] != 0 {
		t.Fatalf("clean stop required recovery repair: %v", ds)
	}
	if ds["recovered_graphs"] != 3 {
		t.Fatalf("recovered_graphs = %v, want 3", ds["recovered_graphs"])
	}
}
