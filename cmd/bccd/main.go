// Command bccd runs the biconnected-components query service: a long-lived
// HTTP/JSON daemon that keeps parsed graphs resident, coalesces identical
// in-flight queries, caches results, and bounds concurrent engine runs.
//
// Usage:
//
//	bccd [-addr :8714] [-workers N] [-queue N] [-cache N]
//	     [-max-graph-bytes B] [-max-body-bytes B] [-timeout D]
//	     [-allow-local-files] [-load name=path ...] [-drain-timeout D]
//	     [-attempt-timeout D] [-breaker-threshold N] [-breaker-cooldown D]
//	     [-no-fallback] [-debug-addr :8715]
//	     [-data-dir DIR] [-wal-sync always|interval|none]
//	     [-wal-sync-interval D] [-compact-bytes B] [-mem-budget B]
//	     [-spill-budget B] [-shard] [-shard-budget B] [-shard-spill-budget B]
//	     [-incr-threshold R] [-replay-log-every N]
//	     [-repl-listen ADDR] [-repl-follow ADDR] [-repl-quorum N]
//	     [-repl-ack-timeout D] [-verify-sample N]
//	     [-scrub-interval D] [-scrub-budget B] [-scrub-cert-sample N]
//	     [-plan off|adaptive|frozen]
//
// With -data-dir set, the daemon is durable: every acknowledged graph
// upload is fsync'd to a write-ahead log before the response is sent,
// snapshots compact the log in the background, and results evicted from
// the memory cache under -mem-budget spill to disk instead of vanishing.
// On boot the directory is recovered — torn tails truncated, graphs
// replayed into the registry, a sample of spilled results re-verified —
// and the outcome is reported on /statsz and /metrics. Without -data-dir
// nothing touches disk and the daemon behaves exactly as before.
//
// With -shard, the daemon additionally maintains a shard-by-component query
// layer: the first per-block query for a (graph, algorithm, procs) triple
// decomposes once and partitions the result into per-block shards behind a
// compact vertex-to-shard routing index, so later queries touch one shard
// instead of the whole payload. Past -shard-budget bytes, least-recently
// used shards demote to disk under <data-dir>/shards (bounded by
// -shard-spill-budget) and promote back on demand; without -data-dir the
// layer is memory-only. If a shard build fails, the query is answered
// through the monolithic cached path and marked degraded.
//
// With -scrub-interval, a durable daemon runs a background scrubber: every
// interval it re-reads the durable tiers — WAL segments, snapshots, spilled
// results, demoted shard blobs, the replication retention ring — re-verifies
// their CRC-32C frames (plus a sampled full recomputation check on spilled
// results), and heals anything damaged from the cheapest healthy source:
// re-demote from the memory cache, recompute from the resident graph,
// compact a fresh snapshot generation, or (on a standby) resync from the
// primary. Artifacts nothing can heal are moved to <data-dir>/quarantine and
// flip /healthz to 503 until an operator clears them. -scrub-budget bounds
// the bytes re-verified per cycle (rotating cursors keep coverage complete
// across cycles); POST /v1/admin/scrub runs one cycle on demand, with or
// without the background loop.
//
// With -repl-listen, a durable daemon is a replication primary: every WAL
// record (graph uploads, deletes, mutation deltas) streams to connected
// standbys, which ack once the record is fsync'd in their own WAL. With
// -repl-follow ADDR, the daemon is a warm standby instead: it follows the
// primary at ADDR, replays the stream into its own registry and WAL, serves
// reads, and answers writes with 503 until POST /v1/admin/promote flips it
// to primary (re-checking every graph fingerprint, exactly as boot
// recovery). Both flags require -data-dir.
//
// With -plan adaptive (the default), algorithm:"auto" queries are routed by
// the per-request query planner instead of the paper's static §4 rule: graph
// features (density, diameter class, degree skew) are scored against a
// calibrated prior blended with the observed latency history of each
// (engine, procs, feature-bucket) cell, engines with an open circuit breaker
// are excluded, and both the engine and the parallelism degree are chosen.
// ?explain=1 on /v1/bcc echoes the decision; /statsz gains a "plan" section.
// -plan frozen routes by the prior alone (deterministic); -plan off restores
// the static rule.
//
// On SIGINT/SIGTERM the daemon drains gracefully: new work is rejected with
// 503 (health and stats stay readable), in-flight requests get
// -drain-timeout to finish, and any stragglers still running after that are
// canceled through their request contexts before the process exits. The WAL
// is flushed and closed last, so a clean stop never needs recovery repair.
//
// Endpoints:
//
//	POST   /v1/graphs        upload a graph (?format=text|dimacs|binary,
//	                         ?normalize=1, ?name=label)
//	POST   /v1/graphs/open   load a graph file server-side (gated by
//	                         -allow-local-files)
//	GET    /v1/graphs        list resident graphs
//	GET    /v1/graphs/{fp}   one graph's info
//	DELETE /v1/graphs/{fp}   evict a graph
//	POST   /v1/graphs/{fp}/edges  mutate a graph in place: {"deltas":
//	                         [{"op": "insert"|"delete", "u": U, "v": V} ...]}.
//	                         Durable daemons fsync the batch to the WAL before
//	                         acknowledging; the block-cut tree decides between
//	                         absorbing the change, recomputing only the dirty
//	                         blocks, or a full engine run (-incr-threshold sets
//	                         the dirty-region ratio that forces a full run)
//	POST   /v1/bcc           run a query: {"graph": fp, "algorithm": ...,
//	                         "procs": N, "timeout_ms": T, "include": [...]}
//	GET    /v1/block/{id}    one block's vertices, cut vertices, and
//	                         (?include=subgraph) remapped subgraph
//	                         (?graph=fp, requires -shard)
//	GET    /v1/vertex/{v}/blocks        block ids containing v (-shard)
//	GET    /v1/vertex/{v}/articulation  articulation membership of v (-shard)
//	POST   /v1/admin/promote promote a standby to primary (replication)
//	POST   /v1/admin/follow  re-point a standby at a new primary's
//	                         replication listener: {"addr": "host:port"}
//	                         (the router calls this after a failover)
//	POST   /v1/admin/scrub   run one scrub cycle now, report in the response
//	GET    /healthz          liveness
//	GET    /statsz           cache hit rate, queue depth, latency histograms
//	GET    /metrics          Prometheus text exposition (engine + service)
//
// Appending ?trace=1 to a /v1/bcc query returns the per-phase span breakdown
// of the computation alongside the result.
//
// With -debug-addr set, a second listener serves GET /metrics plus the
// net/http/pprof handlers under /debug/pprof/ — on a separate address so
// profiling endpoints are never exposed on the query port.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"bicc"
	"bicc/internal/durable"
	"bicc/internal/obs"
	"bicc/internal/service"
)

// loadFlags collects repeated -load name=path arguments.
type loadFlags []string

func (l *loadFlags) String() string { return strings.Join(*l, ",") }

func (l *loadFlags) Set(v string) error {
	*l = append(*l, v)
	return nil
}

func main() {
	log.SetFlags(log.LstdFlags)
	log.SetPrefix("bccd: ")

	addr := flag.String("addr", ":8714", "listen address")
	workers := flag.Int("workers", 0, "max concurrent engine computations (0 = GOMAXPROCS/2)")
	queue := flag.Int("queue", -1, "max queued computations (-1 = 4x workers)")
	cacheEntries := flag.Int("cache", 0, "max cached query results (0 = 256)")
	maxGraphBytes := flag.Int64("max-graph-bytes", 0, "graph registry byte budget (0 = 1 GiB)")
	timeout := flag.Duration("timeout", 0, "default per-query timeout (0 = 60s)")
	allowLocal := flag.Bool("allow-local-files", false, "enable POST /v1/graphs/open (server-side file reads)")
	drainTimeout := flag.Duration("drain-timeout", 15*time.Second, "how long in-flight requests may run after SIGINT/SIGTERM")
	attemptTimeout := flag.Duration("attempt-timeout", 0, "per-attempt bound on parallel engines before fallback (0 = none)")
	breakerThreshold := flag.Int("breaker-threshold", 0, "consecutive engine faults that open an algorithm's circuit breaker (0 = 5)")
	breakerCooldown := flag.Duration("breaker-cooldown", 0, "open-breaker cooldown before a half-open probe (0 = 15s)")
	noFallback := flag.Bool("no-fallback", false, "return engine faults as errors instead of degrading to the sequential engine")
	debugAddr := flag.String("debug-addr", "", "serve /metrics and /debug/pprof on this extra address (empty = disabled)")
	maxBodyBytes := flag.Int64("max-body-bytes", 0, "request body cap for uploads and queries, 413 past it (0 = 256 MiB)")
	dataDir := flag.String("data-dir", "", "durable data directory: WAL + snapshots + result spill (empty = diskless)")
	walSync := flag.String("wal-sync", "always", "WAL fsync policy: always (per append), interval, or none")
	walSyncInterval := flag.Duration("wal-sync-interval", 0, "flush period under -wal-sync interval (0 = 5ms)")
	compactBytes := flag.Int64("compact-bytes", 0, "WAL size that triggers background snapshot compaction (0 = 64 MiB)")
	memBudget := flag.Int64("mem-budget", 0, "result cache memory budget; past it results spill to disk (0 = entry count only)")
	spillBudget := flag.Int64("spill-budget", 0, "disk budget for spilled results (0 = unlimited)")
	shardOn := flag.Bool("shard", false, "enable the shard-by-component per-block query endpoints")
	shardBudget := flag.Int64("shard-budget", 0, "resident byte budget for shard state; past it shards demote (0 = unlimited)")
	shardSpillBudget := flag.Int64("shard-spill-budget", 0, "disk budget for demoted shards under <data-dir>/shards (0 = unlimited)")
	incrThreshold := flag.Float64("incr-threshold", 0, "dirty-region edge ratio past which a mutation degrades to a full engine run (0 = 0.5)")
	replayLogEvery := flag.Int("replay-log-every", 5000, "log boot WAL-replay progress every N records (0 = silent)")
	replListen := flag.String("repl-listen", "", "serve WAL replication to standbys on this address (requires -data-dir)")
	replFollow := flag.String("repl-follow", "", "run as a warm standby following the primary's -repl-listen address (requires -data-dir)")
	replQuorum := flag.Int("repl-quorum", 0, "standby acks to wait for per write before answering the client (0 = 1; degrades on timeout)")
	replAckTimeout := flag.Duration("repl-ack-timeout", 0, "bound on the per-write standby-ack wait (0 = 2s)")
	verifySample := flag.Int("verify-sample", 0, "spilled results re-verified end to end at boot (0 = 3)")
	scrubInterval := flag.Duration("scrub-interval", 0, "background scrub cycle cadence (0 = manual cycles via POST /v1/admin/scrub only)")
	scrubBudget := flag.Int64("scrub-budget", 0, "bytes re-verified per scrub cycle; cursors resume next cycle (0 = unlimited)")
	scrubCertSample := flag.Int("scrub-cert-sample", 0, "re-verify every Nth spilled result's content via recomputation certificate (0 = 8)")
	planMode := flag.String("plan", service.PlanAdaptive, "auto-query routing: off (static paper rule), adaptive (plan engine+procs from graph features and observed latency), frozen (prior only, deterministic)")
	var loads loadFlags
	flag.Var(&loads, "load", "preload a graph at startup: name=path or just path (repeatable; format by extension)")
	flag.Parse()

	plan, err := service.ParsePlanMode(*planMode)
	if err != nil {
		log.Fatalf("-plan: %v", err)
	}

	// The daemon always runs instrumented: the per-site cost is one atomic
	// load plus a counter add, noise next to any engine run worth serving.
	obs.SetEnabled(true)

	srv := service.New(service.Config{
		Workers:          *workers,
		Queue:            *queue,
		CacheEntries:     *cacheEntries,
		MaxGraphBytes:    *maxGraphBytes,
		MaxBodyBytes:     *maxBodyBytes,
		DefaultTimeout:   *timeout,
		AllowLocalFiles:  *allowLocal,
		AttemptTimeout:   *attemptTimeout,
		BreakerThreshold: *breakerThreshold,
		BreakerCooldown:  *breakerCooldown,
		NoFallback:       *noFallback,
		IncrThreshold:    *incrThreshold,
		PlanMode:         plan,
	})
	if *dataDir != "" {
		mode, err := durable.ParseSyncMode(*walSync)
		if err != nil {
			log.Fatalf("-wal-sync: %v", err)
		}
		rep, err := srv.EnableDurability(service.DurabilityConfig{
			Dir:            *dataDir,
			Sync:           mode,
			SyncInterval:   *walSyncInterval,
			CompactBytes:   *compactBytes,
			SpillBudget:    *spillBudget,
			MemBudget:      *memBudget,
			VerifySample:   *verifySample,
			ReplayLogEvery: *replayLogEvery,
			Logf:           log.Printf,
		})
		if err != nil {
			log.Fatalf("-data-dir %s: %v", *dataDir, err)
		}
		log.Printf("recovered %d graphs from %s in %v (truncations %d, dropped %d, wal records %d, snapshot records %d, spilled results %d, verified %d, verify failures %d)",
			rep.Graphs, *dataDir, rep.Duration.Round(time.Millisecond), rep.Truncations,
			rep.DroppedGraphs+rep.DroppedRecords, rep.WALRecords, rep.SnapshotRecords,
			rep.SpilledResults, rep.VerifiedResults, rep.VerifyFailures)
	}
	if *replListen != "" || *replFollow != "" {
		if *dataDir == "" {
			log.Fatalf("-repl-listen/-repl-follow require -data-dir (replication ships the WAL)")
		}
		if err := srv.EnableReplication(service.ReplConfig{
			ListenAddr: *replListen,
			FollowAddr: *replFollow,
			Quorum:     *replQuorum,
			AckTimeout: *replAckTimeout,
			Logf:       log.Printf,
		}); err != nil {
			log.Fatalf("replication: %v", err)
		}
		if *replFollow != "" {
			log.Printf("standby: following %s (read-only until promoted)", *replFollow)
		} else {
			log.Printf("primary: replicating WAL on %s", srv.ReplAddr())
		}
	}
	if *shardOn {
		cfg := service.ShardingConfig{
			MemBudget:   *shardBudget,
			SpillBudget: *shardSpillBudget,
		}
		// Demoted shards only have somewhere to go when the daemon already
		// has a data directory; diskless sharding stays memory-only.
		if *dataDir != "" {
			cfg.SpillDir = filepath.Join(*dataDir, "shards")
		}
		if err := srv.EnableSharding(cfg); err != nil {
			log.Fatalf("-shard: %v", err)
		}
		if cfg.SpillDir != "" {
			log.Printf("sharding enabled (spill dir %s)", cfg.SpillDir)
		} else {
			log.Printf("sharding enabled (memory-only)")
		}
	}
	if *dataDir != "" {
		// Enabled last so every durable tier (including shard spill and the
		// replication ring) is already visible to the tier adapters. With no
		// -scrub-interval the loop stays off and POST /v1/admin/scrub runs
		// cycles on demand.
		if err := srv.EnableScrub(service.ScrubConfig{
			Interval:   *scrubInterval,
			Budget:     *scrubBudget,
			CertSample: *scrubCertSample,
			Logf:       log.Printf,
		}); err != nil {
			log.Fatalf("scrub: %v", err)
		}
		if *scrubInterval > 0 {
			log.Printf("scrubber: background cycle every %v (budget %d bytes/cycle)", *scrubInterval, *scrubBudget)
		}
	}
	for _, spec := range loads {
		name, fp, err := preload(srv, spec)
		if err != nil {
			log.Fatalf("-load %s: %v", spec, err)
		}
		log.Printf("preloaded %s as %s (%s)", spec, fp, name)
	}

	// baseCtx underlies every request context; canceling it after the drain
	// deadline tears down straggler computations through the engines' own
	// cancellation plumbing instead of abandoning them.
	baseCtx, cancelBase := context.WithCancel(context.Background())
	defer cancelBase()
	httpSrv := &http.Server{
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
		BaseContext:       func(net.Listener) context.Context { return baseCtx },
	}
	// Listen explicitly so the actual bound address can be logged: with
	// -addr :0 (tests, harnesses) the kernel picks the port, and callers
	// discover it from this line.
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.Serve(ln) }()
	log.Printf("listening on %s", ln.Addr())

	var debugSrv *http.Server
	if *debugAddr != "" {
		mux := http.NewServeMux()
		mux.Handle("GET /metrics", srv.MetricsHandler())
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		debugSrv = &http.Server{Addr: *debugAddr, Handler: mux, ReadHeaderTimeout: 10 * time.Second}
		go func() {
			if err := debugSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				log.Printf("debug listener: %v", err)
			}
		}()
		log.Printf("debug endpoints (metrics, pprof) on %s", *debugAddr)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errCh:
		log.Fatal(err)
	case s := <-sig:
		log.Printf("%v: draining (up to %v)", s, *drainTimeout)
	}
	// Stop admitting new work first, so the Shutdown window is spent
	// finishing queries already in flight rather than accepting fresh ones
	// over kept-alive connections.
	srv.BeginDrain()
	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	err = httpSrv.Shutdown(ctx)
	if err != nil {
		// Drain deadline hit with requests still running: cancel their
		// contexts and give the engines a moment to unwind before exiting.
		log.Printf("drain timeout, canceling stragglers: %v", err)
		cancelBase()
		ctx2, cancel2 := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel2()
		_ = httpSrv.Shutdown(ctx2)
	}
	// Flush and close the WAL only after the HTTP server has stopped: every
	// acknowledged write is already on disk (or in the sync loop's hands),
	// and closing last guarantees a clean stop leaves files the next boot
	// recovers with zero truncations. Replication stops first — no more
	// records will be published — and the scrubber before that: its repair
	// ladder reaches into both subsystems.
	srv.CloseScrub()
	srv.CloseReplication()
	if derr := srv.CloseDurability(); derr != nil {
		log.Printf("closing data dir: %v", derr)
	}
	if err != nil && !errors.Is(err, context.DeadlineExceeded) && !errors.Is(err, http.ErrServerClosed) {
		log.Printf("shutdown: %v", err)
		os.Exit(1)
	}
	if debugSrv != nil {
		_ = debugSrv.Close()
	}
	snap := srv.Snapshot()
	log.Printf("served %d queries (hit rate %.0f%%, %d computations), bye",
		snap.Requests, 100*snap.CacheHitRate, snap.Computations)
}

// preload parses one -load spec ("name=path" or "path") and registers the
// graph, normalizing so dirty inputs don't abort startup.
func preload(srv *service.Server, spec string) (name, fp string, err error) {
	path := spec
	if i := strings.IndexByte(spec, '='); i >= 0 {
		name, path = spec[:i], spec[i+1:]
	}
	if name == "" {
		name = filepath.Base(path)
	}
	f, err := os.Open(path)
	if err != nil {
		return "", "", err
	}
	defer f.Close()
	var g *bicc.Graph
	switch strings.ToLower(filepath.Ext(path)) {
	case ".bin", ".bicc":
		g, err = bicc.ReadGraphBinary(f)
	case ".col", ".dimacs":
		g, err = bicc.ReadGraphDIMACS(f)
	default:
		g, err = bicc.ReadGraph(f)
	}
	if err != nil {
		return "", "", fmt.Errorf("parsing: %w", err)
	}
	// AddGraph, not Registry().Add: preloaded graphs go through the WAL
	// too when the daemon is durable.
	fp, _, err = srv.AddGraph(name, g)
	if err != nil {
		return "", "", err
	}
	return name, fp, nil
}
