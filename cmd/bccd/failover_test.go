// Node-kill chaos harness: the PR 4 crash tests proved a single bccd
// survives its own death; these prove the *deployment* does. A real primary
// and a real warm standby run as separate processes over separate data
// directories, the primary is SIGKILLed at injected replication fault sites
// (repl.ship: record durable locally but never shipped; repl.ack: record
// durable on the standby but the ack unrecorded), and the assertions are
// the availability contract: every WAL-acked upload and mutation is served
// byte-identical by the promoted standby, un-acked tail records are
// consistently absent (or, past the ack site, consistently present — the
// at-least-once boundary), and hedged reads through the router answer
// correctly while the primary is down. A third case SIGKILLs the standby
// mid-promotion (repl.promote) and shows the next promotion over the same
// data directory recovers everything — promotion is PR 4 recovery plus a
// role flip, so dying inside it loses nothing.
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"bicc"
	"bicc/internal/repl"
	"bicc/internal/service"
)

// replAddr digs the replication listener's address out of the daemon's
// startup log ("primary: replicating WAL on HOST:PORT"), which is printed
// before the HTTP listen line startBccd already waits for.
func (p *bccdProc) replAddr() string {
	p.t.Helper()
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, line := range p.lines {
		if i := strings.Index(line, "replicating WAL on "); i >= 0 {
			return strings.TrimSpace(line[i+len("replicating WAL on "):])
		}
	}
	p.t.Fatalf("no replication listener line in stderr:\n%s", strings.Join(p.lines, "\n"))
	return ""
}

// replStats fetches the /statsz replication section.
func (p *bccdProc) replStats() (map[string]any, error) {
	resp, err := http.Get(p.url("/statsz"))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var out struct {
		Repl map[string]any `json:"repl"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, err
	}
	if out.Repl == nil {
		return nil, fmt.Errorf("no repl section in /statsz")
	}
	return out.Repl, nil
}

// waitApplied polls the standby's /statsz until its replication cursor
// reaches want.
func (p *bccdProc) waitApplied(want float64) {
	p.t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		if st, err := p.replStats(); err == nil {
			if seq, _ := st["applied_seq"].(float64); seq >= want {
				return
			}
		}
		time.Sleep(5 * time.Millisecond)
	}
	p.t.Fatalf("standby never applied seq %v; stderr:\n%s", want, p.stderr())
}

// mutate posts one insert delta and returns an error when the daemon died
// mid-request.
func (p *bccdProc) mutate(fp string, u, v int32) error {
	body := fmt.Sprintf(`{"deltas":[{"op":"insert","u":%d,"v":%d}]}`, u, v)
	resp, err := http.Post(p.url("/v1/graphs/"+fp+"/edges"), "application/json", strings.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("status %d: %s", resp.StatusCode, data)
	}
	return nil
}

// queryNorm asks base for the full view set of fp under algo and returns
// the response with per-request fields (timings, cache/serving markers)
// stripped, so answers from different nodes compare byte-for-byte
// (json.Marshal of a map emits sorted keys).
func queryNorm(t *testing.T, base, fp, algo string) (string, error) {
	t.Helper()
	body := fmt.Sprintf(`{"graph":%q,"algorithm":%q,"include":["components","articulation","bridges","blockcut"]}`, fp, algo)
	resp, err := http.Post(base+"/v1/bcc", "application/json", strings.NewReader(body))
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("status %d: %s", resp.StatusCode, data)
	}
	var m map[string]any
	if err := json.Unmarshal(data, &m); err != nil {
		return "", err
	}
	for _, k := range []string{"elapsed_ns", "phases", "cached", "incr", "graph", "trace"} {
		delete(m, k)
	}
	out, err := json.Marshal(m)
	return string(out), err
}

var failoverEngines = []string{"sequential", "tv-opt"}

// startReplPair launches a primary (with faults injected via priFaults) and
// a warm standby following it, each over its own data directory.
func startReplPair(t *testing.T, dirP, dirS, priFaults, stbFaults string) (pri, stb *bccdProc) {
	t.Helper()
	pri = startBccd(t, dirP, priFaults, "-repl-listen", "127.0.0.1:0")
	stb = startBccd(t, dirS, stbFaults, "-repl-follow", pri.replAddr())
	return pri, stb
}

// TestNodeKillFailover SIGKILLs the whole primary process at each
// replication fault site mid-batch and asserts the promoted standby's view
// of the world: acked state byte-identical, un-acked tail handled per the
// site's at-least-once position, reads hedged correctly while the primary
// is down, writes restored by router-driven promotion.
func TestNodeKillFailover(t *testing.T) {
	cases := []struct {
		site string
		// tailSurvives: the in-flight (never client-acked) record at the kill
		// site. At repl.ship the primary dies before the record leaves the
		// box, so the standby must not have it. At repl.ack the standby has
		// already fsync'd it — the ack was read but unrecorded — so the
		// promoted node serves it: at-least-once, never lost-after-ack.
		tailSurvives bool
	}{
		{"repl.ship", false},
		{"repl.ack", true},
	}
	for _, tc := range cases {
		t.Run(tc.site, func(t *testing.T) {
			// Records 1..3 are the acked batch (two uploads + one mutation);
			// the kill rule arms record 4, an upload that must never be
			// acknowledged.
			pri, stb := startReplPair(t, t.TempDir(), t.TempDir(),
				fmt.Sprintf("kill,site=%s,iter=4", tc.site), "")

			g1, fp1 := crashGraph(t, 1)
			g2, fp2 := crashGraph(t, 2)
			for i, g := range []*bicc.Graph{g1, g2} {
				if _, err := pri.upload(g); err != nil {
					t.Fatalf("upload %d: %v", i, err)
				}
			}
			if err := pri.mutate(fp1, 0, 50); err != nil {
				t.Fatalf("mutation: %v", err)
			}
			stb.waitApplied(3)

			// What the primary serves pre-kill is the byte-level contract the
			// promoted standby must honor.
			want := map[string]string{}
			for _, fp := range []string{fp1, fp2} {
				for _, algo := range failoverEngines {
					ans, err := queryNorm(t, "http://"+pri.addr, fp, algo)
					if err != nil {
						t.Fatalf("pre-kill query %s/%s: %v", fp, algo, err)
					}
					want[fp+"/"+algo] = ans
				}
			}

			// Record 4: the fault site kills the primary before the client is
			// acknowledged.
			g4, fp4 := crashGraph(t, 4)
			if _, err := pri.upload(g4); err == nil {
				t.Fatal("upload 4 was acknowledged despite the kill site")
			}
			if st := pri.waitExit(); st.Success() {
				t.Fatalf("primary exited cleanly, want SIGKILL: %s", pri.stderr())
			}
			if !strings.Contains(pri.stderr(), "faults: injected kill at "+tc.site) {
				t.Fatalf("kill did not fire at %s; stderr:\n%s", tc.site, pri.stderr())
			}

			// The router fronts the dead primary and the surviving standby.
			rt, err := repl.NewRouter(repl.RouterConfig{
				Primary:       "http://" + pri.addr,
				Standbys:      []string{"http://" + stb.addr},
				ProbeInterval: 50 * time.Millisecond,
				Logf:          t.Logf,
			})
			if err != nil {
				t.Fatal(err)
			}
			defer rt.Close()
			front := httptest.NewServer(rt)
			defer front.Close()

			// Hedged reads answer correctly while the primary is down and no
			// promotion has happened: the first attempt fails against the
			// corpse, the hedge lands on the warm standby.
			for _, algo := range failoverEngines {
				got, err := queryNorm(t, front.URL, fp2, algo)
				if err != nil {
					t.Fatalf("hedged read with dead primary: %v", err)
				}
				if got != want[fp2+"/"+algo] {
					t.Fatalf("hedged read diverged\nwant %s\ngot  %s", want[fp2+"/"+algo], got)
				}
			}
			if rt.Failovers() != 0 {
				t.Fatalf("failovers %d after reads, want 0: reads must not promote", rt.Failovers())
			}

			// The first write through the router finds the primary dead,
			// promotes the standby (replay-to-tip already happened; the
			// fingerprint re-check runs inside /v1/admin/promote), and retries
			// the idempotent upload transparently.
			var buf bytes.Buffer
			if err := bicc.WriteGraphBinary(&buf, g2); err != nil {
				t.Fatal(err)
			}
			resp, err := http.Post(front.URL+"/v1/graphs?format=binary", "application/octet-stream", &buf)
			if err != nil {
				t.Fatalf("failover write: %v", err)
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("failover write: status %d", resp.StatusCode)
			}
			if rt.Failovers() != 1 || rt.Primary() != "http://"+stb.addr {
				t.Fatalf("failovers %d primary %q, want 1 and the promoted standby", rt.Failovers(), rt.Primary())
			}

			// Every acked upload and mutation is served byte-identical by the
			// promoted node.
			for key, w := range want {
				fp, algo, _ := strings.Cut(key, "/")
				got, err := queryNorm(t, "http://"+stb.addr, fp, algo)
				if err != nil {
					t.Fatalf("promoted query %s: %v", key, err)
				}
				if got != w {
					t.Fatalf("%s after failover diverged\nwant %s\ngot  %s", key, w, got)
				}
			}

			// The un-acked tail record, per the kill site's position relative
			// to the standby's fsync.
			graphs, err := stb.graphs()
			if err != nil {
				t.Fatal(err)
			}
			if _, present := graphs[fp4]; present != tc.tailSurvives {
				t.Fatalf("un-acked record present=%v at %s, want %v", present, tc.site, tc.tailSurvives)
			}
			if tc.tailSurvives {
				// Present means fully intact: content-addressing re-derives the
				// fingerprint from the replicated bytes.
				if g := graphs[fp4]; g.Vertices != g4.NumVertices() || g.Edges != g4.NumEdges() {
					t.Fatalf("surviving tail record %+v, want %dx%d", g, g4.NumVertices(), g4.NumEdges())
				}
				if _, err := queryNorm(t, "http://"+stb.addr, fp4, "tv-opt"); err != nil {
					t.Fatalf("querying surviving tail record: %v", err)
				}
			}

			// The promoted node is a primary now: role reported, writes
			// accepted, new mutations flow.
			st, err := stb.replStats()
			if err != nil {
				t.Fatal(err)
			}
			if st["role"] != "primary" {
				t.Fatalf("promoted role %v, want primary", st["role"])
			}
			if err := stb.mutate(fp2, 1, 40); err != nil {
				t.Fatalf("mutation after promotion: %v", err)
			}
		})
	}
}

// TestNodeKillDuringPromotion SIGKILLs the standby inside its own promotion
// (the repl.promote fingerprint re-check) and asserts the data directory it
// leaves behind promotes cleanly on the next attempt: nothing acked is
// lost, because promotion mutates nothing until a fingerprint mismatch —
// it IS boot recovery with a role flip at the end.
func TestNodeKillDuringPromotion(t *testing.T) {
	dirS := t.TempDir()
	pri, stb := startReplPair(t, t.TempDir(), dirS, "", "kill,site=repl.promote,iter=1")
	replAddr := pri.replAddr()

	g1, fp1 := crashGraph(t, 1)
	g2, fp2 := crashGraph(t, 2)
	for _, g := range []*bicc.Graph{g1, g2} {
		if _, err := pri.upload(g); err != nil {
			t.Fatal(err)
		}
	}
	if err := pri.mutate(fp1, 0, 50); err != nil {
		t.Fatal(err)
	}
	stb.waitApplied(3)
	want := map[string]string{}
	for _, fp := range []string{fp1, fp2} {
		for _, algo := range failoverEngines {
			ans, err := queryNorm(t, "http://"+pri.addr, fp, algo)
			if err != nil {
				t.Fatal(err)
			}
			want[fp+"/"+algo] = ans
		}
	}

	// Whole-node death of the primary, no clean shutdown.
	if err := pri.cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	pri.waitExit()

	// First promotion attempt dies at the second registry entry of the
	// fingerprint re-check.
	_, err := http.Post("http://"+stb.addr+"/v1/admin/promote", "", nil)
	if err == nil {
		t.Fatal("promote was answered despite the kill site")
	}
	if st := stb.waitExit(); st.Success() {
		t.Fatalf("standby exited cleanly, want SIGKILL: %s", stb.stderr())
	}
	if !strings.Contains(stb.stderr(), "faults: injected kill at repl.promote") {
		t.Fatalf("kill did not fire at repl.promote; stderr:\n%s", stb.stderr())
	}

	// Restart over the same directory (still a standby chasing the dead
	// primary's address) and promote again: PR 4 recovery makes the retry
	// indistinguishable from a first promotion.
	stb2 := startBccd(t, dirS, "", "-repl-follow", replAddr)
	resp, err := http.Post("http://"+stb2.addr+"/v1/admin/promote", "", nil)
	if err != nil {
		t.Fatalf("second promote: %v", err)
	}
	var rep service.PromoteReport
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || rep.Role != "primary" || rep.Verified != 2 || rep.Dropped != 0 {
		t.Fatalf("second promote: status %d report %+v, want primary verified=2 dropped=0", resp.StatusCode, rep)
	}

	for key, w := range want {
		fp, algo, _ := strings.Cut(key, "/")
		got, err := queryNorm(t, "http://"+stb2.addr, fp, algo)
		if err != nil {
			t.Fatalf("query %s after recovered promotion: %v", key, err)
		}
		if got != w {
			t.Fatalf("%s after recovered promotion diverged\nwant %s\ngot  %s", key, w, got)
		}
	}
	// Writable under the new reign.
	g3, _ := crashGraph(t, 3)
	if _, err := stb2.upload(g3); err != nil {
		t.Fatalf("upload after recovered promotion: %v", err)
	}
}
