// Command bccverify cross-validates the five biconnected components
// implementations against each other on randomized instances — the
// repository's standing fuzz harness. It generates random graphs across a
// size/density grid, runs every algorithm at several worker counts, and
// reports the first divergence in block counts, edge partitions,
// articulation points, or bridges.
//
// Usage:
//
//	bccverify [-trials 200] [-maxn 300] [-seed 1] [-v]
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"

	"bicc/internal/conncomp"
	"bicc/internal/core"
	"bicc/internal/fastbcc"
	"bicc/internal/gen"
	"bicc/internal/graph"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("bccverify: ")
	trials := flag.Int("trials", 200, "number of random instances")
	maxn := flag.Int("maxn", 300, "maximum vertex count")
	seed := flag.Int64("seed", 1, "base random seed")
	verbose := flag.Bool("v", false, "log every instance")
	flag.Parse()

	rng := rand.New(rand.NewSource(*seed))
	type algo struct {
		name string
		run  func(p int, g *graph.EdgeList) (*core.Result, error)
	}
	algos := []algo{
		{"tv-smp", core.TVSMP},
		{"tv-smp-wyllie", core.TVSMPWyllie},
		{"tv-opt", core.TVOpt},
		{"tv-filter", core.TVFilter},
		{"fast-bcc", func(p int, g *graph.EdgeList) (*core.Result, error) {
			return fastbcc.Run(p, g, fastbcc.Config{})
		}},
	}
	for trial := 0; trial < *trials; trial++ {
		n := 2 + rng.Intn(*maxn-1)
		maxM := n * (n - 1) / 2
		m := rng.Intn(maxM + 1)
		g := gen.Random(n, m, rng.Int63())
		if *verbose {
			fmt.Printf("trial %d: n=%d m=%d\n", trial, n, m)
		}
		want := core.Sequential(g)
		wantCuts := core.Articulation(g, want.EdgeComp)
		wantBridges := core.Bridges(g, want.EdgeComp, want.NumComp)
		for _, a := range algos {
			for _, p := range []int{1, 2, 4} {
				got, err := a.run(p, g)
				if err != nil {
					fail(trial, g, a.name, p, fmt.Sprintf("error: %v", err))
				}
				if got.NumComp != want.NumComp {
					fail(trial, g, a.name, p, fmt.Sprintf("NumComp %d != %d", got.NumComp, want.NumComp))
				}
				if m > 0 && !conncomp.SamePartition(got.EdgeComp, want.EdgeComp) {
					fail(trial, g, a.name, p, "edge partition differs")
				}
				gotCuts := core.Articulation(g, got.EdgeComp)
				if len(gotCuts) != len(wantCuts) {
					fail(trial, g, a.name, p, "articulation points differ")
				}
				gotBridges := core.Bridges(g, got.EdgeComp, got.NumComp)
				if len(gotBridges) != len(wantBridges) {
					fail(trial, g, a.name, p, "bridges differ")
				}
			}
		}
		// The fast counter must agree too.
		cnt, err := core.CountBlocks(2, g)
		if err != nil || cnt != want.NumComp {
			fail(trial, g, "count-blocks", 2, fmt.Sprintf("count=%d err=%v want=%d", cnt, err, want.NumComp))
		}
	}
	fmt.Printf("OK: %d trials, %d algorithms x 3 proc counts, all consistent\n", *trials, len(algos))
}

// fail dumps the offending instance to a file and aborts.
func fail(trial int, g *graph.EdgeList, algo string, p int, msg string) {
	f, err := os.CreateTemp(".", "bccverify-failure-*.txt")
	if err == nil {
		_ = graph.Write(f, g)
		f.Close()
		log.Printf("instance written to %s", f.Name())
	}
	log.Fatalf("trial %d: %s (p=%d): %s", trial, algo, p, msg)
}
