// Command bccrouter fronts a replicated bccd deployment: one primary plus N
// warm standbys (see bccd's -repl-listen / -repl-follow).
//
// Usage:
//
//	bccrouter -primary URL [-standby URL ...] [-addr :8713]
//	          [-hedge D] [-probe-interval D] [-retry-after D]
//
// Routing rules:
//
//   - Writes (uploads, opens, deletes, edge mutations) go to the primary.
//   - Idempotent reads (every GET, plus POST /v1/bcc — content-addressed
//     and side-effect free) go to the primary too, but past a latency
//     threshold (-hedge, or an adaptive p95 of recent reads when 0) the
//     same request is hedged to a fingerprint-hashed standby and the first
//     answer wins. The X-Bicc-Backend response header names the node that
//     answered.
//   - When the primary dies, reads fail over to standbys immediately. The
//     first failed write triggers promotion: the router picks the
//     reachable standby with the highest applied replication sequence
//     (from /statsz), POSTs /v1/admin/promote, installs it as the new
//     primary, and re-points every surviving standby at the promoted
//     node's replication listener (POST /v1/admin/follow); a survivor
//     that cannot be retargeted is dropped from the hedge pool. Idempotent
//     writes are then retried once transparently. A non-idempotent write
//     (edge mutation) that was already in flight when the primary died
//     answers 503 + Retry-After with the X-Bicc-Maybe-Applied header —
//     the mutation may have committed, so retry layers must not replay it
//     blindly; one that was never sent anywhere is simply forwarded to
//     the promoted node.
//   - 503 + Retry-After is returned only when no replica can serve the
//     request at all.
//
// GET /routerz on the same listener reports the router's own counters.
package main

import (
	"encoding/json"
	"flag"
	"log"
	"net/http"
	"strings"
	"time"

	"bicc/internal/repl"
)

type urlFlags []string

func (u *urlFlags) String() string { return strings.Join(*u, ",") }

func (u *urlFlags) Set(v string) error {
	*u = append(*u, v)
	return nil
}

func main() {
	log.SetFlags(log.LstdFlags)
	log.SetPrefix("bccrouter: ")

	addr := flag.String("addr", ":8713", "listen address")
	primary := flag.String("primary", "", "primary bccd base URL (required), e.g. http://127.0.0.1:8714")
	hedge := flag.Duration("hedge", 0, "read-hedging latency threshold (0 = adaptive p95 of recent reads)")
	probeInterval := flag.Duration("probe-interval", 0, "backend health-probe cadence (0 = 250ms)")
	retryAfter := flag.Duration("retry-after", 0, "Retry-After hint on 503s (0 = 1s)")
	var standbys urlFlags
	flag.Var(&standbys, "standby", "standby bccd base URL (repeatable)")
	flag.Parse()

	if *primary == "" {
		log.Fatal("-primary is required")
	}
	rt, err := repl.NewRouter(repl.RouterConfig{
		Primary:       *primary,
		Standbys:      standbys,
		HedgeDelay:    *hedge,
		ProbeInterval: *probeInterval,
		RetryAfter:    *retryAfter,
		Logf:          log.Printf,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer rt.Close()

	mux := http.NewServeMux()
	mux.HandleFunc("GET /routerz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(map[string]any{
			"primary":     rt.Primary(),
			"failovers":   rt.Failovers(),
			"hedged":      rt.Hedged(),
			"hedged_wins": rt.HedgedWins(),
			"refused":     rt.Refused(),
		})
	})
	mux.Handle("/", rt)

	srv := &http.Server{Addr: *addr, Handler: mux, ReadHeaderTimeout: 10 * time.Second}
	log.Printf("routing %s (+%d standbys) on %s", *primary, len(standbys), *addr)
	log.Fatal(srv.ListenAndServe())
}
