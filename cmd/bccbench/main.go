// Command bccbench regenerates the paper's Figure 3: execution time and
// speedup of the sequential, TV-SMP, TV-opt, TV-filter and FAST-BCC
// biconnected components implementations on random graphs of several edge
// densities, swept over processor counts.
//
// The paper's instances are 1M-vertex graphs with 4M, 10M and 20M (n log n)
// edges on a 12-processor Sun E4500; -scale shrinks the instances
// proportionally for quick runs and -maxprocs bounds the sweep.
//
// Usage:
//
//	bccbench [-scale 0.1] [-maxprocs N] [-reps 3]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"runtime/pprof"

	"bicc/internal/bench"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("bccbench: ")
	scale := flag.Float64("scale", 0.1, "instance scale relative to the paper's n=1M")
	maxprocs := flag.Int("maxprocs", runtime.GOMAXPROCS(0), "largest worker count in the sweep")
	reps := flag.Int("reps", 3, "repetitions per configuration (median reported)")
	csvPath := flag.String("csv", "", "also write measurements as CSV to this file")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	flag.Parse()
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatal(err)
		}
		defer pprof.StopCPUProfile()
	}

	instances := bench.PaperInstances(*scale)
	procs := bench.ProcsSweep(*maxprocs)
	fmt.Printf("# paper: Cong & Bader, IPPS 2005, Fig. 3 (Sun E4500, 12 procs, n=1M)\n")
	fmt.Printf("# here: scale=%.3g, GOMAXPROCS=%d, procs sweep %v, reps=%d\n",
		*scale, runtime.GOMAXPROCS(0), procs, *reps)
	ms, err := bench.Fig3(os.Stdout, instances, procs, *reps)
	if err != nil {
		log.Fatal(err)
	}
	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		if err := bench.Fig3CSV(f, ms); err != nil {
			log.Fatal(err)
		}
	}
}
