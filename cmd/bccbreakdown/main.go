// Command bccbreakdown regenerates the paper's Figure 4: the per-step
// execution-time breakdown (Spanning-tree, Euler-tour, root, Low-high,
// Label-edge, Connected-components, Filtering, Skeleton) of TV-SMP,
// TV-opt, TV-filter and FAST-BCC at the maximum processor count, across
// the paper's three edge densities. The TV columns that FAST-BCC skips
// (Euler-tour, Filtering) read zero for it, and vice versa for Skeleton.
//
// Usage:
//
//	bccbreakdown [-scale 0.1] [-p N] [-reps 3]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"

	"bicc/internal/bench"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("bccbreakdown: ")
	scale := flag.Float64("scale", 0.1, "instance scale relative to the paper's n=1M")
	procs := flag.Int("p", runtime.GOMAXPROCS(0), "worker count (paper: 12)")
	reps := flag.Int("reps", 3, "repetitions per configuration (median reported)")
	csvPath := flag.String("csv", "", "also write the breakdown as CSV to this file")
	flag.Parse()

	instances := bench.PaperInstances(*scale)
	fmt.Printf("# paper: Cong & Bader, IPPS 2005, Fig. 4 (breakdown at 12 procs, n=1M)\n")
	fmt.Printf("# here: scale=%.3g, p=%d, reps=%d\n", *scale, *procs, *reps)
	ms, err := bench.Fig4(os.Stdout, instances, *procs, *reps)
	if err != nil {
		log.Fatal(err)
	}
	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		if err := bench.Fig4CSV(f, ms); err != nil {
			log.Fatal(err)
		}
	}
}
