// Command bccgen generates benchmark graph instances in the textual
// edge-list format on stdout.
//
// Usage:
//
//	bccgen -family random -n 1000000 -m 4000000 [-seed 1] [-connected]
//	bccgen -family mesh -rows 1000 -cols 1000
//	bccgen -family chain -n 100000
//	bccgen -family dense -n 2000 -frac 0.7 [-seed 1]
package main

import (
	"bufio"
	"flag"
	"log"
	"os"

	"bicc"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("bccgen: ")
	family := flag.String("family", "random", "graph family: random, mesh, torus, chain, dense")
	n := flag.Int("n", 1000, "vertices (random, chain, dense)")
	m := flag.Int("m", 4000, "edges (random)")
	rows := flag.Int("rows", 100, "rows (mesh, torus)")
	cols := flag.Int("cols", 100, "columns (mesh, torus)")
	frac := flag.Float64("frac", 0.7, "edge fraction (dense)")
	seed := flag.Int64("seed", 1, "random seed")
	connected := flag.Bool("connected", true, "force connectivity (random)")
	format := flag.String("format", "text", "output format: text, dimacs, binary")
	flag.Parse()

	var (
		g   *bicc.Graph
		err error
	)
	switch *family {
	case "random":
		if *connected {
			g, err = bicc.RandomConnectedGraph(*n, *m, *seed)
		} else {
			g, err = bicc.RandomGraph(*n, *m, *seed)
		}
	case "mesh":
		g = bicc.MeshGraph(*rows, *cols)
	case "torus":
		g = bicc.TorusGraph(*rows, *cols)
	case "chain":
		g = bicc.ChainGraph(*n)
	case "dense":
		g = bicc.DenseGraph(*n, *frac, *seed)
	default:
		log.Fatalf("unknown family %q", *family)
	}
	if err != nil {
		log.Fatal(err)
	}
	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()
	switch *format {
	case "text":
		err = bicc.WriteGraph(w, g)
	case "dimacs":
		err = bicc.WriteGraphDIMACS(w, g)
	case "binary":
		err = bicc.WriteGraphBinary(w, g)
	default:
		log.Fatalf("unknown format %q", *format)
	}
	if err != nil {
		log.Fatal(err)
	}
}
