// Command bccmut streams edge mutations against a running bccd and reports
// per-batch latency, so the incremental path can be measured like any other
// engine: modes, dirty-block counts, and wall time per acknowledged batch.
//
// Usage:
//
//	bccmut -graph FP [-addr URL] [-batch N] -file deltas.txt
//	bccmut -graph FP -synth local|random -graph-file g.txt [-count N]
//	       [-window W] [-delete-frac F] [-seed S]
//
// In file mode the delta stream is one op per line — "insert U V" or
// "delete U V", '#' comments ignored — grouped into batches of -batch ops;
// a blank line flushes the current batch early, so a file can control batch
// boundaries exactly. "-file -" reads stdin.
//
// In synth mode the tool generates -count operations client-side from a
// local copy of the graph (needed to know the vertex count and live edge
// set, since duplicate inserts and absent deletes are rejected by the
// server). "local" picks a random center vertex per batch and keeps both
// endpoints within -window ids of it — high block locality, the absorb and
// small-rebuild paths; "random" draws uniform endpoint pairs — low
// locality, the degrade-to-full path. A -delete-frac slice of operations
// deletes edges the tool itself inserted earlier, so base-graph
// connectivity is never cut by the synthesizer.
//
// Each batch prints its client-measured latency plus the server's mode and
// region stats; the run ends with p50/p95/max latency overall and per mode.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"bicc"
	"bicc/internal/httpretry"
)

type delta struct {
	Op string `json:"op"`
	U  int32  `json:"u"`
	V  int32  `json:"v"`
}

// mutateReply mirrors the service's mutate response; fields the tool does
// not print are omitted.
type mutateReply struct {
	Generation  uint64  `json:"generation"`
	Mode        string  `json:"mode"`
	Deltas      int     `json:"deltas"`
	Absorbed    int     `json:"absorbed"`
	DirtyBlocks int     `json:"dirty_blocks"`
	RegionRatio float64 `json:"region_ratio"`
	Edges       int     `json:"edges"`
	Degraded    bool    `json:"degraded"`
	ElapsedNs   int64   `json:"elapsed_ns"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("bccmut: ")

	addr := flag.String("addr", "http://localhost:8714", "bccd base URL")
	graphFP := flag.String("graph", "", "fingerprint of the resident graph to mutate (required)")
	file := flag.String("file", "", "delta file: 'insert U V' / 'delete U V' per line ('-' = stdin)")
	batch := flag.Int("batch", 64, "ops per mutation batch in file mode")
	synth := flag.String("synth", "", "generate deltas instead of reading them: local or random")
	graphFile := flag.String("graph-file", "", "local copy of the graph, required with -synth (format by extension)")
	count := flag.Int("count", 1000, "total synthesized ops")
	window := flag.Int("window", 32, "vertex-id radius around each batch's center in -synth local")
	deleteFrac := flag.Float64("delete-frac", 0.3, "fraction of synthesized ops that delete a previously inserted edge")
	seed := flag.Int64("seed", 1, "synthesizer RNG seed")
	timeout := flag.Duration("timeout", 60*time.Second, "per-batch HTTP timeout")
	flag.Parse()

	if *graphFP == "" {
		log.Fatal("-graph is required")
	}
	if (*file == "") == (*synth == "") {
		log.Fatal("exactly one of -file or -synth must be set")
	}

	var batches [][]delta
	var err error
	switch {
	case *file != "":
		batches, err = readDeltaFile(*file, *batch)
	case *synth == "local" || *synth == "random":
		if *graphFile == "" {
			log.Fatal("-synth needs -graph-file to know the live edge set")
		}
		batches, err = synthesize(*synth, *graphFile, *count, *batch, *window, *deleteFrac, *seed)
	default:
		log.Fatalf("-synth %q: want local or random", *synth)
	}
	if err != nil {
		log.Fatal(err)
	}
	if len(batches) == 0 {
		log.Fatal("no deltas to send")
	}

	url := strings.TrimRight(*addr, "/") + "/v1/graphs/" + *graphFP + "/edges"
	// Plain 429/503 are refused-before-effect, so resending a mutation
	// batch on them is safe; transport errors and 503s stamped
	// X-Bicc-Maybe-Applied are not retried — the batch may have committed,
	// and replaying it would double-apply.
	client := &httpretry.Client{
		HTTP:   &http.Client{Timeout: *timeout},
		Policy: httpretry.Policy{Logf: log.Printf},
	}
	var lats []time.Duration
	byMode := map[string][]time.Duration{}
	totalOps := 0
	start := time.Now()
	for i, b := range batches {
		body, _ := json.Marshal(map[string]any{"deltas": b})
		t0 := time.Now()
		resp, err := client.Post(url, "application/json", body)
		if err != nil {
			log.Fatalf("batch %d: %v", i, err)
		}
		lat := time.Since(t0)
		payload, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.Header.Get(httpretry.HeaderMaybeApplied) != "" {
			// The server says this batch MAY have committed before its
			// primary died; auto-resending could double-apply it. Stop here
			// — the operator checks the graph's generation before resuming.
			log.Fatalf("batch %d: %s: outcome ambiguous (the batch may already be applied): %s",
				i, resp.Status, strings.TrimSpace(string(payload)))
		}
		if resp.StatusCode != http.StatusOK {
			log.Fatalf("batch %d: %s: %s", i, resp.Status, strings.TrimSpace(string(payload)))
		}
		var rep mutateReply
		if err := json.Unmarshal(payload, &rep); err != nil {
			log.Fatalf("batch %d: decoding response: %v", i, err)
		}
		lats = append(lats, lat)
		byMode[rep.Mode] = append(byMode[rep.Mode], lat)
		totalOps += rep.Deltas
		degraded := ""
		if rep.Degraded {
			degraded = " degraded"
		}
		fmt.Printf("batch %3d  gen %-4d %-6s  ops %-3d absorbed %-3d dirty %-3d ratio %.3f  server %8.3fms  total %8.3fms%s\n",
			i, rep.Generation, rep.Mode, rep.Deltas, rep.Absorbed, rep.DirtyBlocks, rep.RegionRatio,
			float64(rep.ElapsedNs)/1e6, float64(lat.Nanoseconds())/1e6, degraded)
	}

	fmt.Printf("\n%d batches, %d ops in %v\n", len(batches), totalOps, time.Since(start).Round(time.Millisecond))
	fmt.Printf("overall   %s\n", percentiles(lats))
	modes := make([]string, 0, len(byMode))
	for m := range byMode {
		modes = append(modes, m)
	}
	sort.Strings(modes)
	for _, m := range modes {
		fmt.Printf("%-9s %s  (%d batches)\n", m, percentiles(byMode[m]), len(byMode[m]))
	}
}

func percentiles(lats []time.Duration) string {
	s := append([]time.Duration(nil), lats...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	pick := func(p float64) time.Duration {
		i := int(p * float64(len(s)-1))
		return s[i]
	}
	return fmt.Sprintf("p50 %8.3fms  p95 %8.3fms  max %8.3fms",
		float64(pick(0.50).Nanoseconds())/1e6,
		float64(pick(0.95).Nanoseconds())/1e6,
		float64(s[len(s)-1].Nanoseconds())/1e6)
}

// readDeltaFile parses the line-oriented delta format into batches of up to
// batchSize ops; a blank line closes the current batch early.
func readDeltaFile(path string, batchSize int) ([][]delta, error) {
	var r io.Reader = os.Stdin
	if path != "-" {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		r = f
	}
	if batchSize < 1 {
		batchSize = 1
	}
	var batches [][]delta
	var cur []delta
	flush := func() {
		if len(cur) > 0 {
			batches = append(batches, cur)
			cur = nil
		}
	}
	sc := bufio.NewScanner(r)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			flush()
			continue
		}
		if strings.HasPrefix(text, "#") {
			continue
		}
		var op string
		var u, v int32
		if _, err := fmt.Sscanf(text, "%s %d %d", &op, &u, &v); err != nil {
			return nil, fmt.Errorf("%s:%d: %q: want 'insert U V' or 'delete U V'", path, line, text)
		}
		if op != "insert" && op != "delete" {
			return nil, fmt.Errorf("%s:%d: op %q: want insert or delete", path, line, op)
		}
		cur = append(cur, delta{Op: op, U: u, V: v})
		if len(cur) >= batchSize {
			flush()
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	flush()
	return batches, nil
}

// synthesize builds count ops against the edge set parsed from graphFile.
// It tracks live edges client-side so every insert targets an absent pair
// and every delete targets an edge this run inserted — the server rejects
// anything else, and deleting only synthesized edges keeps the base graph
// connected.
func synthesize(mode, graphFile string, count, batchSize, window int, deleteFrac float64, seed int64) ([][]delta, error) {
	g, err := readGraphFile(graphFile)
	if err != nil {
		return nil, err
	}
	n := int32(g.NumVertices())
	if n < 2 {
		return nil, fmt.Errorf("%s: need at least 2 vertices", graphFile)
	}
	canon := func(u, v int32) [2]int32 {
		if u > v {
			u, v = v, u
		}
		return [2]int32{u, v}
	}
	live := map[[2]int32]bool{}
	for _, e := range g.Edges() {
		live[canon(e.U, e.V)] = true
	}
	rng := rand.New(rand.NewSource(seed))
	if batchSize < 1 {
		batchSize = 1
	}
	if window < 1 {
		window = 1
	}
	var batches [][]delta
	var cur []delta
	// Synthesized edges become delete-eligible only once their batch has
	// been flushed: the server rejects insert-then-delete of the same edge
	// within one batch.
	var inserted, pending [][2]int32
	center := rng.Int31n(n)
	pickVertex := func() int32 {
		if mode == "random" {
			return rng.Int31n(n)
		}
		v := center + rng.Int31n(int32(2*window+1)) - int32(window)
		if v < 0 {
			v = 0
		}
		if v >= n {
			v = n - 1
		}
		return v
	}
	for op := 0; op < count; op++ {
		if rng.Float64() < deleteFrac && len(inserted) > 0 {
			i := rng.Intn(len(inserted))
			key := inserted[i]
			inserted[i] = inserted[len(inserted)-1]
			inserted = inserted[:len(inserted)-1]
			delete(live, key)
			cur = append(cur, delta{Op: "delete", U: key[0], V: key[1]})
		} else {
			var key [2]int32
			found := false
			for try := 0; try < 64; try++ {
				u, v := pickVertex(), pickVertex()
				if u == v {
					continue
				}
				key = canon(u, v)
				if !live[key] {
					found = true
					break
				}
			}
			if !found {
				// The window is saturated; move on rather than spin.
				center = rng.Int31n(n)
				continue
			}
			live[key] = true
			pending = append(pending, key)
			cur = append(cur, delta{Op: "insert", U: key[0], V: key[1]})
		}
		if len(cur) >= batchSize {
			batches = append(batches, cur)
			cur = nil
			inserted = append(inserted, pending...)
			pending = nil
			center = rng.Int31n(n) // each batch gets its own locality center
		}
	}
	if len(cur) > 0 {
		batches = append(batches, cur)
	}
	return batches, nil
}

// readGraphFile parses a graph by extension, matching bccd's -load rules.
func readGraphFile(path string) (*bicc.Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	switch strings.ToLower(filepath.Ext(path)) {
	case ".bin", ".bicc":
		return bicc.ReadGraphBinary(f)
	case ".col", ".dimacs":
		return bicc.ReadGraphDIMACS(f)
	default:
		return bicc.ReadGraph(f)
	}
}
