// Command bccjson times the paper's four algorithms on the scaled random
// instance and writes the medians as machine-readable JSON, for CI trend
// tracking and external dashboards.
//
// Usage:
//
//	bccjson [-scale 0.1] [-reps 3] [-p procs] [-all] [-o BENCH_1.json]
//
// By default only the first paper instance (m = 4n) is timed; -all sweeps
// the full Fig. 3 workload.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"time"

	"bicc/internal/bench"
)

type benchRecord struct {
	Instance  string  `json:"instance"`
	N         int     `json:"n"`
	M         int     `json:"m"`
	Algorithm string  `json:"algorithm"`
	Procs     int     `json:"procs"`
	MedianNs  int64   `json:"median_ns_op"`
	Speedup   float64 `json:"speedup_vs_sequential"`
}

type benchReport struct {
	Scale      float64       `json:"scale"`
	Reps       int           `json:"reps"`
	GoMaxProcs int           `json:"gomaxprocs"`
	Benchmarks []benchRecord `json:"benchmarks"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("bccjson: ")
	scale := flag.Float64("scale", 0.1, "instance scale relative to the paper's n=1M")
	reps := flag.Int("reps", 3, "repetitions per measurement (median reported)")
	procs := flag.Int("p", 0, "worker count for the parallel algorithms (0 = GOMAXPROCS)")
	all := flag.Bool("all", false, "time every paper instance, not just m=4n")
	out := flag.String("o", "BENCH_1.json", "output file (- for stdout)")
	flag.Parse()

	p := *procs
	if p <= 0 {
		p = runtime.GOMAXPROCS(0)
	}
	instances := bench.PaperInstances(*scale)
	if !*all {
		instances = instances[:1]
	}
	report := benchReport{Scale: *scale, Reps: *reps, GoMaxProcs: runtime.GOMAXPROCS(0)}
	for _, in := range instances {
		g := in.Build()
		var seqTime time.Duration
		for _, algo := range bench.Algos() {
			ap := p
			if algo.Name == "sequential" {
				ap = 1
			}
			m, err := bench.Run(in, g, algo, ap, *reps)
			if err != nil {
				log.Fatal(err)
			}
			if algo.Name == "sequential" {
				seqTime = m.Time
			}
			report.Benchmarks = append(report.Benchmarks, benchRecord{
				Instance:  in.Name,
				N:         in.N,
				M:         in.M,
				Algorithm: m.Algo,
				Procs:     ap,
				MedianNs:  int64(m.Time),
				Speedup:   m.Speedup(seqTime),
			})
			log.Printf("%-8s %-10s p=%-2d median %v", in.Name, m.Algo, ap, m.Time.Round(time.Microsecond))
		}
	}

	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	data = append(data, '\n')
	if *out == "-" {
		if _, err := os.Stdout.Write(data); err != nil {
			log.Fatal(err)
		}
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s (%d measurements)\n", *out, len(report.Benchmarks))
}
