// Command bccjson times the five algorithms on the scaled random instance
// and writes the medians as machine-readable JSON, for CI trend tracking
// and external dashboards.
//
// Usage:
//
//	bccjson [-scale 0.1] [-reps 3] [-p procs] [-sweep 1,4] [-all] [-plan]
//	        [-o BENCH_1.json] [-addr URL]
//
// By default only the first paper instance (m = 4n) is timed; -all sweeps
// the full Fig. 3 workload. -sweep replaces the single -p worker count
// with a comma-separated list: every parallel algorithm is measured at
// every count (the sequential baseline always runs once at p=1), which is
// how `make bench-json` produces the BENCH_2.json p=1 vs p=4 comparison.
// -plan appends synthetic "auto-static" and "auto-plan" rows per
// (instance, procs): the engine each auto-routing policy (the paper's
// static §4 rule vs the history-free adaptive planner) would dispatch,
// priced at the medians already measured — which is how `make bench-json`
// produces BENCH_3.json.
//
// With -addr, the measurements run through a live bccd instead of
// in-process: each instance is uploaded once (content-addressed, so reruns
// are free) and every algorithm is queried -reps times over HTTP. The
// first query per (algorithm, procs) pays the engine run; the rest hit the
// server's cache, so the reported median is end-to-end service latency —
// the number a client of the daemon actually sees — while speedup is still
// computed from the engines' own elapsed_ns. 429s and 503s (admission
// pushback, drains, failovers behind a router) are retried with jittered
// backoff honoring Retry-After, so a benchmark run survives a primary
// failover instead of aborting.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"bicc"
	"bicc/internal/bench"
	"bicc/internal/httpretry"
	"bicc/internal/plan"
)

type benchRecord struct {
	Instance  string  `json:"instance"`
	N         int     `json:"n"`
	M         int     `json:"m"`
	Algorithm string  `json:"algorithm"`
	Procs     int     `json:"procs"`
	MedianNs  int64   `json:"median_ns_op"`
	Speedup   float64 `json:"speedup_vs_sequential"`
	// Chosen is set only on the synthetic auto-plan/auto-static rows added
	// by -plan: the concrete engine the policy mapped the auto query to.
	Chosen string `json:"chosen,omitempty"`
}

type benchReport struct {
	Scale      float64       `json:"scale"`
	Reps       int           `json:"reps"`
	GoMaxProcs int           `json:"gomaxprocs"`
	Benchmarks []benchRecord `json:"benchmarks"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("bccjson: ")
	scale := flag.Float64("scale", 0.1, "instance scale relative to the paper's n=1M")
	reps := flag.Int("reps", 3, "repetitions per measurement (median reported)")
	procs := flag.Int("p", 0, "worker count for the parallel algorithms (0 = GOMAXPROCS)")
	sweep := flag.String("sweep", "", "comma-separated worker counts to sweep (overrides -p)")
	all := flag.Bool("all", false, "time every paper instance, not just m=4n")
	out := flag.String("o", "BENCH_1.json", "output file (- for stdout)")
	addr := flag.String("addr", "", "measure through a running bccd at this base URL instead of in-process")
	withPlan := flag.Bool("plan", false,
		"derive auto-static and auto-plan rows per (instance, procs) from the measured medians (no extra engine runs)")
	flag.Parse()

	p := *procs
	if p <= 0 {
		p = runtime.GOMAXPROCS(0)
	}
	procsList := []int{p}
	if *sweep != "" {
		procsList = nil
		for _, field := range strings.Split(*sweep, ",") {
			v, err := strconv.Atoi(strings.TrimSpace(field))
			if err != nil || v < 1 {
				log.Fatalf("bad -sweep entry %q", field)
			}
			procsList = append(procsList, v)
		}
	}
	instances := bench.PaperInstances(*scale)
	if !*all {
		instances = instances[:1]
	}
	report := benchReport{Scale: *scale, Reps: *reps, GoMaxProcs: runtime.GOMAXPROCS(0)}
	if *addr != "" {
		serviceBench(&report, *addr, instances, procsList, *reps)
	} else {
		localBench(&report, instances, procsList, *reps)
	}
	if *withPlan {
		appendPlanRows(&report, instances, procsList)
	}

	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	data = append(data, '\n')
	if *out == "-" {
		if _, err := os.Stdout.Write(data); err != nil {
			log.Fatal(err)
		}
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s (%d measurements)\n", *out, len(report.Benchmarks))
}

// localBench runs the engines in-process, the tool's original mode. The
// sequential baseline runs once at p=1 per instance; every parallel engine
// runs at every entry of procsList.
func localBench(report *benchReport, instances []bench.Instance, procsList []int, reps int) {
	for _, in := range instances {
		g := in.Build()
		algos := bench.Algos()
		seq, err := bench.Run(in, g, algos[0], 1, reps)
		if err != nil {
			log.Fatal(err)
		}
		record := func(m bench.Measurement, ap int) {
			report.Benchmarks = append(report.Benchmarks, benchRecord{
				Instance:  in.Name,
				N:         in.N,
				M:         in.M,
				Algorithm: m.Algo,
				Procs:     ap,
				MedianNs:  int64(m.Time),
				Speedup:   m.Speedup(seq.Time),
			})
			log.Printf("%-8s %-10s p=%-2d median %v", in.Name, m.Algo, ap, m.Time.Round(time.Microsecond))
		}
		record(seq, 1)
		for _, algo := range algos[1:] {
			for _, ap := range procsList {
				m, err := bench.Run(in, g, algo, ap, reps)
				if err != nil {
					log.Fatal(err)
				}
				record(m, ap)
			}
		}
	}
}

// serviceBench uploads each instance to a running bccd and measures every
// algorithm through /v1/bcc. MedianNs is end-to-end request latency;
// Speedup compares the engines' server-reported elapsed_ns.
func serviceBench(report *benchReport, addr string, instances []bench.Instance, procsList []int, reps int) {
	base := strings.TrimRight(addr, "/")
	client := &httpretry.Client{
		HTTP: &http.Client{Timeout: 5 * time.Minute},
		// Uploads are content-addressed and queries are side-effect free:
		// everything here is idempotent, so transport errors retry too (a
		// failover mid-request lands the repeat on the promoted node).
		Policy: httpretry.Policy{RetryTransportErrors: true, Logf: log.Printf},
	}
	for _, in := range instances {
		el := in.Build()
		g, err := bicc.NewGraph(int(el.N), el.Edges)
		if err != nil {
			log.Fatalf("%s: %v", in.Name, err)
		}
		var buf strings.Builder
		if err := bicc.WriteGraph(&buf, g); err != nil {
			log.Fatalf("%s: serializing: %v", in.Name, err)
		}
		resp, err := client.Post(base+"/v1/graphs?name="+in.Name, "text/plain", []byte(buf.String()))
		if err != nil {
			log.Fatalf("%s: uploading: %v", in.Name, err)
		}
		var info struct {
			Fingerprint string `json:"fingerprint"`
		}
		if err := decodeBody(resp, &info); err != nil {
			log.Fatalf("%s: uploading: %v", in.Name, err)
		}
		var seqEngine time.Duration
		measure := func(algo bench.Algo, ap int) {
			var lats []time.Duration
			var engine time.Duration
			for rep := 0; rep < reps; rep++ {
				body, _ := json.Marshal(map[string]any{
					"graph": info.Fingerprint, "algorithm": algo.Name, "procs": ap,
				})
				t0 := time.Now()
				resp, err := client.Post(base+"/v1/bcc", "application/json", body)
				if err != nil {
					log.Fatalf("%s %s: %v", in.Name, algo.Name, err)
				}
				lats = append(lats, time.Since(t0))
				var qr struct {
					ElapsedNs int64 `json:"elapsed_ns"`
				}
				if err := decodeBody(resp, &qr); err != nil {
					log.Fatalf("%s %s: %v", in.Name, algo.Name, err)
				}
				engine = time.Duration(qr.ElapsedNs)
			}
			median := medianDuration(lats)
			if algo.Name == "sequential" {
				seqEngine = engine
			}
			speedup := 0.0
			if engine > 0 {
				speedup = float64(seqEngine) / float64(engine)
			}
			report.Benchmarks = append(report.Benchmarks, benchRecord{
				Instance:  in.Name,
				N:         in.N,
				M:         in.M,
				Algorithm: algo.Name,
				Procs:     ap,
				MedianNs:  int64(median),
				Speedup:   speedup,
			})
			log.Printf("%-8s %-10s p=%-2d median %v (engine %v)",
				in.Name, algo.Name, ap, median.Round(time.Microsecond), engine.Round(time.Microsecond))
		}
		algos := bench.Algos()
		measure(algos[0], 1)
		for _, algo := range algos[1:] {
			for _, ap := range procsList {
				measure(algo, ap)
			}
		}
	}
}

// appendPlanRows adds two synthetic algorithms to the report, "auto-static"
// and "auto-plan": what an algorithm:"auto" query would cost under the
// static §4 rule versus the history-free (frozen) adaptive planner, at each
// swept worker count. Both are pure lookups into the medians already
// measured — the engines are not re-run — so the rows answer "which engine
// would each policy have dispatched, and what did that engine actually
// cost here".
func appendPlanRows(report *benchReport, instances []bench.Instance, procsList []int) {
	type key struct {
		inst, algo string
		procs      int
	}
	measured := map[key]benchRecord{}
	for _, r := range report.Benchmarks {
		measured[key{r.Instance, r.Algorithm, r.Procs}] = r
	}
	// The sequential baseline is measured once at p=1 and ignores the
	// worker count, so any policy that picks it reuses that row.
	lookup := func(inst, engine string, p int) (benchRecord, bool) {
		if r, ok := measured[key{inst, engine, p}]; ok {
			return r, true
		}
		if engine == "sequential" {
			r, ok := measured[key{inst, engine, 1}]
			return r, ok
		}
		return benchRecord{}, false
	}
	for _, in := range instances {
		el := in.Build()
		g, err := bicc.NewGraph(int(el.N), el.Edges)
		if err != nil {
			log.Fatalf("%s: %v", in.Name, err)
		}
		for _, p := range procsList {
			pl := plan.New(plan.Config{Frozen: true, MaxProcs: p})
			d := pl.Decide(pl.FeaturesOf(el), p, false)
			for _, row := range []struct{ name, engine string }{
				{"auto-static", bicc.ResolveAlgorithm(g, bicc.Auto, p).String()},
				{"auto-plan", d.Engine},
			} {
				r, ok := lookup(in.Name, row.engine, p)
				if !ok {
					log.Printf("%-8s %-12s p=%-2d -> %s: no measurement, skipping",
						in.Name, row.name, p, row.engine)
					continue
				}
				report.Benchmarks = append(report.Benchmarks, benchRecord{
					Instance:  in.Name,
					N:         in.N,
					M:         in.M,
					Algorithm: row.name,
					Procs:     p,
					MedianNs:  r.MedianNs,
					Speedup:   r.Speedup,
					Chosen:    row.engine,
				})
				log.Printf("%-8s %-12s p=%-2d -> %-10s median %v",
					in.Name, row.name, p, row.engine, time.Duration(r.MedianNs).Round(time.Microsecond))
			}
		}
	}
}

// decodeBody reads resp's JSON into v, turning non-200s into errors.
func decodeBody(resp *http.Response, v any) error {
	payload, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	resp.Body.Close()
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s: %s", resp.Status, strings.TrimSpace(string(payload)))
	}
	return json.Unmarshal(payload, v)
}

// medianDuration returns the middle element of lats.
func medianDuration(lats []time.Duration) time.Duration {
	s := append([]time.Duration(nil), lats...)
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
	return s[len(s)/2]
}
