// Benchmarks regenerating the paper's evaluation (§5) with testing.B.
// One benchmark family per figure, plus ablations for the design choices
// DESIGN.md calls out. The paper's full-size instances (n=1M) are scaled to
// benchmark-friendly sizes here; cmd/bccbench and cmd/bccbreakdown run the
// same harness at arbitrary scales.
package bicc

import (
	"fmt"
	"math"
	"runtime"
	"testing"

	"bicc/internal/bench"
	"bicc/internal/core"
	"bicc/internal/eulertour"
	"bicc/internal/gen"
	"bicc/internal/graph"
	"bicc/internal/psort"
	"bicc/internal/spantree"
	"bicc/internal/treecomp"
)

// benchN is the vertex count for benchmark instances (the paper uses 1M;
// this default keeps `go test -bench .` tractable — scale with
// cmd/bccbench for larger runs).
const benchN = 30_000

// densities mirrors the paper's Fig. 3/4 x-axis: m = 4n, 10n, n·log n.
func densities() map[string]int {
	return map[string]int{
		"m=4n":    4 * benchN,
		"m=10n":   10 * benchN,
		"m=nlogn": int(float64(benchN) * math.Log2(benchN)),
	}
}

func benchGraph(m int) *graph.EdgeList {
	return gen.RandomConnected(benchN, m, 20050404)
}

// BenchmarkFig3 regenerates Figure 3: each (density, algorithm, procs)
// cell is one sub-benchmark; relative ns/op across algorithms at fixed
// density reproduces the paper's curves.
func BenchmarkFig3(b *testing.B) {
	procs := bench.ProcsSweep(runtime.GOMAXPROCS(0))
	for density, m := range densities() {
		g := benchGraph(m)
		b.Run(fmt.Sprintf("%s/sequential/p=1", density), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				core.Sequential(g)
			}
		})
		for _, algo := range bench.Algos()[1:] {
			for _, p := range procs {
				b.Run(fmt.Sprintf("%s/%s/p=%d", density, algo.Name, p), func(b *testing.B) {
					for i := 0; i < b.N; i++ {
						if _, err := algo.Run(p, g); err != nil {
							b.Fatal(err)
						}
					}
				})
			}
		}
	}
}

// BenchmarkFig4 regenerates Figure 4: one sub-benchmark per (density,
// algorithm) at max procs, reporting each step's share as custom metrics
// (<phase>-ns/op).
func BenchmarkFig4(b *testing.B) {
	p := runtime.GOMAXPROCS(0)
	for density, m := range densities() {
		g := benchGraph(m)
		for _, algo := range bench.Algos()[1:] {
			b.Run(fmt.Sprintf("%s/%s", density, algo.Name), func(b *testing.B) {
				totals := map[string]float64{}
				for i := 0; i < b.N; i++ {
					res, err := algo.Run(p, g)
					if err != nil {
						b.Fatal(err)
					}
					for _, name := range core.PhaseOrder {
						totals[name] += float64(res.PhaseDuration(name).Nanoseconds())
					}
				}
				for _, name := range core.PhaseOrder {
					if totals[name] > 0 {
						b.ReportMetric(totals[name]/float64(b.N), name+"-ns/op")
					}
				}
			})
		}
	}
}

// BenchmarkAblationTreeComp isolates the paper's §3.2 claim: tree
// computations by list ranking (Wyllie, Helman–JáJá) versus prefix sums
// over the DFS-ordered tour.
func BenchmarkAblationTreeComp(b *testing.B) {
	p := runtime.GOMAXPROCS(0)
	g := benchGraph(4 * benchN)
	f := spantree.SV(p, g.N, g.Edges)
	roots := []int32{0}
	tour, err := eulertour.FromForest(p, g.N, g.Edges, f.TreeEdges, roots)
	if err != nil {
		b.Fatal(err)
	}
	c := graph.ToCSR(p, g)
	rooted := spantree.WorkStealing(p, c)
	b.Run("listrank-wyllie", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			seq, err := eulertour.Sequence(p, tour, false)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := treecomp.Compute(p, seq); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("listrank-helman-jaja", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			seq, err := eulertour.Sequence(p, tour, true)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := treecomp.Compute(p, seq); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("prefix-sum-dfs-order", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			seq := eulertour.DFSOrder(p, g.Edges, rooted)
			if _, err := treecomp.Compute(p, seq); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationEulerTour isolates the representation-conversion cost:
// the sort-based circular-adjacency construction versus the DFS-order
// construction.
func BenchmarkAblationEulerTour(b *testing.B) {
	p := runtime.GOMAXPROCS(0)
	g := benchGraph(4 * benchN)
	f := spantree.SV(p, g.N, g.Edges)
	c := graph.ToCSR(p, g)
	rooted := spantree.WorkStealing(p, c)
	b.Run("sort-based", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := eulertour.FromForest(p, g.N, g.Edges, f.TreeEdges, []int32{0}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("dfs-order", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			eulertour.DFSOrder(p, g.Edges, rooted)
		}
	})
}

// BenchmarkAblationSpanningTree compares the three spanning-tree
// algorithms (§3.2): SV graft-and-shortcut, work-stealing traversal
// (rooted), and parallel BFS (rooted, with levels).
func BenchmarkAblationSpanningTree(b *testing.B) {
	p := runtime.GOMAXPROCS(0)
	g := benchGraph(4 * benchN)
	c := graph.ToCSR(p, g)
	b.Run("shiloach-vishkin", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			spantree.SV(p, g.N, g.Edges)
		}
	})
	b.Run("work-stealing", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			spantree.WorkStealing(p, c)
		}
	})
	b.Run("bfs", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			spantree.BFS(p, c)
		}
	})
}

// BenchmarkAblationFilter measures the §4 trade: filtering overhead versus
// the work it saves, across densities. The paper predicts TV-filter loses
// at extreme sparsity and wins increasingly with density.
func BenchmarkAblationFilter(b *testing.B) {
	p := runtime.GOMAXPROCS(0)
	for _, mult := range []int{1, 2, 4, 10, 15} {
		g := gen.RandomConnected(benchN, mult*benchN, 99)
		b.Run(fmt.Sprintf("m=%dn/tv-opt", mult), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.TVOpt(p, g); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("m=%dn/tv-filter", mult), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.TVFilter(p, g); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationSort compares the sorting substrates available to the
// TV-SMP Euler-tour construction.
func BenchmarkAblationSort(b *testing.B) {
	p := runtime.GOMAXPROCS(0)
	g := benchGraph(4 * benchN)
	arcs := make([]psort.Pair, 0, 2*len(g.Edges))
	for i, e := range g.Edges {
		arcs = append(arcs,
			psort.Pair{Key: uint64(uint32(e.U))<<32 | uint64(uint32(e.V)), Val: int32(2 * i)},
			psort.Pair{Key: uint64(uint32(e.V))<<32 | uint64(uint32(e.U)), Val: int32(2*i + 1)})
	}
	scratch := make([]psort.Pair, len(arcs))
	b.Run("sample-sort", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			copy(scratch, arcs)
			psort.SampleSortPairs(p, scratch)
		}
	})
	b.Run("radix-sort", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			copy(scratch, arcs)
			psort.RadixSortPairs(p, scratch)
		}
	})
}

// BenchmarkPublicAPI tracks the end-to-end cost through the public entry
// point with Auto selection.
func BenchmarkPublicAPI(b *testing.B) {
	g, err := RandomConnectedGraph(benchN, 4*benchN, 5)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := BiconnectedComponents(g, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationLowHigh compares the two low/high engines: blocked-RMQ
// range queries versus the level-synchronized bottom-up sweep, on a shallow
// (random BFS tree) and a deep (chain) instance.
func BenchmarkAblationLowHigh(b *testing.B) {
	p := runtime.GOMAXPROCS(0)
	shapes := map[string]*graph.EdgeList{
		"shallow-random": benchGraph(4 * benchN),
		"deep-chain":     gen.Chain(benchN),
	}
	for shape, g := range shapes {
		c := graph.ToCSR(p, g)
		f := spantree.BFS(p, c)
		seq := eulertour.DFSOrder(p, g.Edges, f)
		td, err := treecomp.Compute(p, seq)
		if err != nil {
			b.Fatal(err)
		}
		isTree := f.TreeEdgeMark(p, len(g.Edges))
		b.Run(shape+"/rmq", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				treecomp.LowHigh(p, td, g.Edges, isTree)
			}
		})
		b.Run(shape+"/bottom-up", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				treecomp.LowHighBottomUp(p, td, g.Edges, isTree)
			}
		})
	}
}

// BenchmarkAblationRepresentation measures the §1 representation trade:
// running TV-opt from an edge list directly versus converting from the
// Woo–Sahni-style adjacency matrix first. Matrix sizes are capped at the
// ~2,000 vertices their study could handle.
func BenchmarkAblationRepresentation(b *testing.B) {
	p := runtime.GOMAXPROCS(0)
	g := gen.Dense(1800, 0.7, 42) // Woo–Sahni regime: 70% of complete
	mat, err := graph.MatrixFromEdgeList(g)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("edge-list", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.TVOpt(p, g); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("adjacency-matrix", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			el := mat.ToEdgeList()
			if _, err := core.TVOpt(p, el); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkScaling measures weak scaling of the winning algorithm over
// problem size at fixed density m = 4n: near-linear growth in ns/op
// confirms the linear-work implementation.
func BenchmarkScaling(b *testing.B) {
	p := runtime.GOMAXPROCS(0)
	for _, n := range []int{10_000, 20_000, 40_000, 80_000} {
		g := gen.RandomConnected(n, 4*n, int64(n))
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.TVFilter(p, g); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationTourConstruction compares the sequential-emission and
// computed (level-sweep) DFS-order tours end to end within TV-opt.
func BenchmarkAblationTourConstruction(b *testing.B) {
	p := runtime.GOMAXPROCS(0)
	g := benchGraph(4 * benchN)
	b.Run("sequential-emission", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.Custom(p, g, core.Config{SpanningTree: core.SpanWorkStealing}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("computed-level-sweep", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.Custom(p, g, core.Config{SpanningTree: core.SpanWorkStealing, ParallelTour: true}); err != nil {
				b.Fatal(err)
			}
		}
	})
}
